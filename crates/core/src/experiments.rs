//! The experiment harness: one function per paper table (plus the Section 6
//! ranked evaluation). Every function returns plain row structs so that
//! benches, examples and the EXPERIMENTS.md generator can print them.

use std::collections::HashMap;

use ltee_clustering::metrics::PhiTableVectors;
use ltee_clustering::{
    build_pair_dataset, build_row_contexts, cluster_rows, train_row_model, ImplicitAttributes,
    RowMetricKind,
};
use ltee_eval::{
    evaluate_clustering, evaluate_facts, evaluate_new_detection, evaluate_new_instances,
    fact_accuracy_against_world, EntityTruth, RankedEvaluation,
};
use ltee_fusion::{create_entities, EntityCreationConfig, ScoringMethod};
use ltee_intern::Interner;
use ltee_kb::{
    generate_world, ClassProfile, GeneratorConfig, Scale, World, CLASS_KEYS,
};
use ltee_matching::{learn_weights, match_corpus, CorpusFeedback, CorpusMapping};
use ltee_ml::grouped_k_folds;
use ltee_newdetect::metrics::EntityContext;
use ltee_newdetect::{
    build_entity_pair_dataset, detect_new, train_entity_model, EntityMetricKind,
};
use ltee_webtables::{generate_corpus, Corpus, CorpusConfig, CorpusProfile, GoldStandard, RowRef};
use serde::{Deserialize, Serialize};

use crate::pipeline::{train_models, Pipeline, PipelineConfig};

/// Shared configuration of the experiment harness.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Seed for the synthetic world.
    pub seed: u64,
    /// Knowledge base / world scale.
    pub scale: Scale,
    /// Corpus configuration.
    pub corpus: CorpusConfig,
    /// Pipeline configuration (fast learners by default).
    pub pipeline: PipelineConfig,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            seed: 2019,
            scale: Scale::gold(),
            corpus: CorpusConfig::gold(),
            pipeline: PipelineConfig::fast(),
        }
    }
}

impl ExperimentConfig {
    /// A very small configuration for tests and quick benches.
    pub fn tiny() -> Self {
        Self {
            seed: 2019,
            scale: Scale::tiny(),
            corpus: CorpusConfig::tiny(),
            pipeline: PipelineConfig::fast(),
        }
    }

    /// The profiling-scale configuration used by Tables 11 and 12.
    pub fn profiling() -> Self {
        Self {
            seed: 2019,
            scale: Scale::profiling(),
            corpus: CorpusConfig::profiling(),
            pipeline: PipelineConfig::fast(),
        }
    }

    /// Generate the world and corpus for this configuration.
    pub fn materialize(&self) -> (World, Corpus) {
        let world = generate_world(&GeneratorConfig::new(self.scale, self.seed));
        let corpus = generate_corpus(&world, &self.corpus);
        (world, corpus)
    }

    /// Build the per-class gold standards.
    pub fn gold_standards(&self, world: &World, corpus: &Corpus) -> Vec<GoldStandard> {
        CLASS_KEYS.iter().map(|&c| GoldStandard::build(world, corpus, c)).collect()
    }
}

// ---------------------------------------------------------------------------
// Tables 1 & 2 — knowledge base profile
// ---------------------------------------------------------------------------

/// One row of Table 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Class name.
    pub class: String,
    /// Number of instances.
    pub instances: usize,
    /// Number of facts.
    pub facts: usize,
}

/// Table 1: instances and facts per class.
pub fn table01_kb_profile(world: &World) -> Vec<Table1Row> {
    CLASS_KEYS
        .iter()
        .map(|&class| {
            let profile = ClassProfile::compute(world.kb(), class);
            Table1Row { class: class.short_name().to_string(), instances: profile.instances, facts: profile.facts }
        })
        .collect()
}

/// One row of Table 2 (and Table 12).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DensityRow {
    /// Class name.
    pub class: String,
    /// Property name.
    pub property: String,
    /// Number of facts.
    pub facts: usize,
    /// Density (fraction of instances/entities with the property).
    pub density: f64,
}

/// Table 2: per-property facts and densities of the knowledge base.
pub fn table02_property_density(world: &World) -> Vec<DensityRow> {
    let mut rows = Vec::new();
    for &class in &CLASS_KEYS {
        let profile = ClassProfile::compute(world.kb(), class);
        for d in profile.densities {
            rows.push(DensityRow {
                class: class.short_name().to_string(),
                property: d.property,
                facts: d.facts,
                density: d.density,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Table 3 — corpus characteristics
// ---------------------------------------------------------------------------

/// Table 3: corpus row/column statistics.
pub fn table03_corpus_stats(corpus: &Corpus) -> CorpusProfile {
    CorpusProfile::compute(corpus)
}

// ---------------------------------------------------------------------------
// Table 4 — matched tables and value correspondences
// ---------------------------------------------------------------------------

/// One row of Table 4.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4Row {
    /// Class name.
    pub class: String,
    /// Tables matched to the class with at least one matched attribute.
    pub tables: usize,
    /// Non-empty cell values inside matched attribute columns.
    pub matched_values: usize,
    /// Non-empty cell values in unmatched (non-label) columns of those tables.
    pub unmatched_values: usize,
}

/// Table 4: tables matched per class and matched/unmatched value counts.
pub fn table04_value_correspondences(corpus: &Corpus, mapping: &CorpusMapping) -> Vec<Table4Row> {
    CLASS_KEYS
        .iter()
        .map(|&class| {
            let mut tables = 0usize;
            let mut matched = 0usize;
            let mut unmatched = 0usize;
            for tm in mapping.tables_of_class(class) {
                if tm.matched_count() == 0 {
                    continue;
                }
                tables += 1;
                let Some(table) = corpus.table(tm.table) else { continue };
                for (col, corr) in tm.correspondences.iter().enumerate() {
                    if col == tm.label_column {
                        continue;
                    }
                    let non_empty = table.columns[col].cells.iter().filter(|c| !c.trim().is_empty()).count();
                    if corr.is_some() {
                        matched += non_empty;
                    } else {
                        unmatched += non_empty;
                    }
                }
            }
            Table4Row {
                class: class.short_name().to_string(),
                tables,
                matched_values: matched,
                unmatched_values: unmatched,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Table 5 — gold standard overview
// ---------------------------------------------------------------------------

/// One row of Table 5.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table5Row {
    /// Class name.
    pub class: String,
    /// Gold standard statistics.
    pub stats: ltee_webtables::GoldStandardStats,
}

/// Table 5: gold standard overview per class.
pub fn table05_gold_standard(world: &World, corpus: &Corpus) -> Vec<Table5Row> {
    CLASS_KEYS
        .iter()
        .map(|&class| {
            let gold = GoldStandard::build(world, corpus, class);
            Table5Row { class: class.short_name().to_string(), stats: gold.stats(corpus) }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Table 6 — attribute-to-property matching by iteration
// ---------------------------------------------------------------------------

/// One row of Table 6.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table6Row {
    /// Iteration number (1-based).
    pub iteration: usize,
    /// Precision of attribute-to-property correspondences.
    pub precision: f64,
    /// Recall of attribute-to-property correspondences.
    pub recall: f64,
    /// F1.
    pub f1: f64,
}

/// Correspondence precision/recall of a mapping against the gold attributes.
fn attribute_prf(mapping: &CorpusMapping, golds: &[GoldStandard]) -> (f64, f64, f64) {
    let mut gold_set: HashMap<(ltee_webtables::TableId, usize), &str> = HashMap::new();
    for gold in golds {
        for a in &gold.attributes {
            gold_set.insert((a.table, a.column), a.property.as_str());
        }
    }
    let mut predicted = 0usize;
    let mut correct = 0usize;
    for tm in mapping.tables() {
        for (col, corr) in tm.correspondences.iter().enumerate() {
            if let Some(m) = corr {
                predicted += 1;
                if gold_set.get(&(tm.table, col)).map(|p| *p == m.property).unwrap_or(false) {
                    correct += 1;
                }
            }
        }
    }
    let precision = if predicted == 0 { 0.0 } else { correct as f64 / predicted as f64 };
    let recall = if gold_set.is_empty() { 0.0 } else { correct as f64 / gold_set.len() as f64 };
    (precision, recall, ltee_eval::f1(precision, recall))
}

/// Table 6: attribute-to-property matching performance by pipeline iteration.
///
/// Iteration 1 runs without feedback; later iterations re-learn the matcher
/// weights with the previous iteration's clusters and correspondences and
/// re-run schema matching with the duplicate-based and corpus-level matchers
/// enabled.
pub fn table06_schema_matching_iterations(config: &ExperimentConfig, iterations: usize) -> Vec<Table6Row> {
    let (world, corpus) = config.materialize();
    let golds = config.gold_standards(&world, &corpus);
    let gold_refs: Vec<&GoldStandard> = golds.iter().collect();
    let kb = world.kb();

    let mut rows = Vec::new();
    let mut feedback: Option<CorpusFeedback> = None;
    for iteration in 1..=iterations.max(1) {
        let weights =
            learn_weights(&corpus, kb, &gold_refs, feedback.as_ref(), &config.pipeline.matcher_genetic);
        let mapping = match_corpus(&corpus, kb, &weights, &config.pipeline.schema, feedback.as_ref());
        let (precision, recall, f1) = attribute_prf(&mapping, &golds);
        rows.push(Table6Row { iteration, precision, recall, f1 });

        // Build feedback from this iteration: cluster rows and link clusters
        // to instances using the gold-standard-free pipeline components.
        let models = train_models(&corpus, kb, &golds, &config.pipeline).expect("experiment corpora are trainable");
        let pipeline = Pipeline::new(kb, models, PipelineConfig { iterations: 1, ..config.pipeline.clone() });
        let output = pipeline.run(&corpus).expect("experiment corpora are non-empty");
        let mut clusters = Vec::new();
        let mut cluster_instance = HashMap::new();
        for class_output in &output.classes {
            for (cluster, result) in class_output.clusters.iter().zip(class_output.results.iter()) {
                let idx = clusters.len();
                clusters.push(cluster.clone());
                if let Some(instance) = result.outcome.instance() {
                    cluster_instance.insert(idx, instance);
                }
            }
        }
        feedback = Some(CorpusFeedback { mapping, clusters, cluster_instance });
    }
    rows
}

// ---------------------------------------------------------------------------
// Table 7 — row clustering ablation
// ---------------------------------------------------------------------------

/// One row of Table 7.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table7Row {
    /// The last metric added (the run uses all metrics up to this one).
    pub added_metric: String,
    /// Penalised clustering precision.
    pub pcp: f64,
    /// Average recall.
    pub ar: f64,
    /// F1.
    pub f1: f64,
    /// Importance of the added metric in the full model.
    pub importance: f64,
}

/// Table 7: clustering performance as metrics are added one by one, averaged
/// over classes, using a grouped train/test split of the gold clusters.
pub fn table07_row_clustering_ablation(config: &ExperimentConfig) -> Vec<Table7Row> {
    let (world, corpus) = config.materialize();
    let golds = config.gold_standards(&world, &corpus);
    let kb = world.kb();
    let weights = ltee_matching::MatcherWeights::default();
    let mapping = match_corpus(&corpus, kb, &weights, &config.pipeline.schema, None);

    let metric_sets: Vec<Vec<RowMetricKind>> =
        (1..=RowMetricKind::ALL.len()).map(|n| RowMetricKind::ALL[..n].to_vec()).collect();

    // Importances from the full model (computed per class, averaged).
    let mut importance_acc: HashMap<&'static str, (f64, usize)> = HashMap::new();
    let mut per_set_scores: Vec<Vec<f64>> = vec![Vec::new(); metric_sets.len()]; // [set][class] = (pcp, ar, f1) flattened below
    let mut per_set_pcp: Vec<Vec<f64>> = vec![Vec::new(); metric_sets.len()];
    let mut per_set_ar: Vec<Vec<f64>> = vec![Vec::new(); metric_sets.len()];

    let mut interner = Interner::new();
    for gold in &golds {
        let class = gold.class;
        let rows = mapping.class_rows(&corpus, class);
        if rows.is_empty() {
            continue;
        }
        let contexts = build_row_contexts(&corpus, &mapping, &rows, &mut interner);
        let phi = PhiTableVectors::build(&corpus, &contexts);
        let index = kb.label_index(class);
        let implicit = ImplicitAttributes::build(&corpus, &mapping, kb, class, &index);

        // Grouped split of the gold clusters: fold 0 is the test portion.
        let groups = gold.cluster_fold_groups();
        let folds = grouped_k_folds(&groups, 3, config.seed);
        let test_clusters: Vec<usize> = folds[0].test.clone();
        let train_clusters: Vec<usize> = folds[0].train.clone();

        let train_gold = restrict_gold(gold, &train_clusters);
        let test_gold = restrict_gold(gold, &test_clusters);
        let test_rows: Vec<RowRef> =
            test_gold.clusters.iter().flat_map(|c| c.rows.iter().copied()).collect();
        let test_contexts: Vec<_> =
            contexts.iter().filter(|c| test_rows.contains(&c.row)).cloned().collect();

        for (set_idx, metrics) in metric_sets.iter().enumerate() {
            let ds = build_pair_dataset(
                &contexts,
                &train_gold,
                metrics,
                &phi,
                &implicit,
                &config.pipeline.row_training,
                &interner,
            );
            if ds.positives() == 0 || ds.negatives() == 0 {
                continue;
            }
            let model = train_row_model(&ds, metrics.clone(), &config.pipeline.row_training);
            let clustering = cluster_rows(
                &test_contexts,
                &model,
                &phi,
                &implicit,
                &config.pipeline.clustering,
                &interner,
            );
            let produced = clustering.to_row_refs(&test_contexts);
            let gold_clusters: Vec<Vec<RowRef>> = test_gold.clusters.iter().map(|c| c.rows.clone()).collect();
            let eval = evaluate_clustering(&produced, &gold_clusters);
            per_set_pcp[set_idx].push(eval.penalized_precision);
            per_set_ar[set_idx].push(eval.average_recall);
            per_set_scores[set_idx].push(eval.f1);

            // Importances from the full-metric model.
            if metrics.len() == RowMetricKind::ALL.len() {
                for (kind, importance) in model.metric_importances() {
                    let entry = importance_acc.entry(kind.name()).or_insert((0.0, 0));
                    entry.0 += importance;
                    entry.1 += 1;
                }
            }
        }
    }

    metric_sets
        .iter()
        .enumerate()
        .map(|(i, metrics)| {
            let added = metrics.last().expect("non-empty metric set");
            let avg = |v: &Vec<f64>| if v.is_empty() { 0.0 } else { v.iter().sum::<f64>() / v.len() as f64 };
            let importance = importance_acc
                .get(added.name())
                .map(|(sum, n)| if *n == 0 { 0.0 } else { sum / *n as f64 })
                .unwrap_or(0.0);
            Table7Row {
                added_metric: added.name().to_string(),
                pcp: avg(&per_set_pcp[i]),
                ar: avg(&per_set_ar[i]),
                f1: avg(&per_set_scores[i]),
                importance,
            }
        })
        .collect()
}

/// Restrict a gold standard to a subset of its clusters (by index),
/// re-indexing the facts accordingly.
fn restrict_gold(gold: &GoldStandard, cluster_indices: &[usize]) -> GoldStandard {
    let index_map: HashMap<usize, usize> =
        cluster_indices.iter().enumerate().map(|(new, &old)| (old, new)).collect();
    GoldStandard {
        class: gold.class,
        tables: gold.tables.clone(),
        clusters: cluster_indices.iter().map(|&i| gold.clusters[i].clone()).collect(),
        attributes: gold.attributes.clone(),
        facts: gold
            .facts
            .iter()
            .filter_map(|f| index_map.get(&f.cluster).map(|&new| {
                let mut f = f.clone();
                f.cluster = new;
                f
            }))
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// Table 8 — new detection ablation
// ---------------------------------------------------------------------------

/// One row of Table 8.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table8Row {
    /// The last metric added.
    pub added_metric: String,
    /// Classification accuracy.
    pub accuracy: f64,
    /// F1 of the existing side.
    pub f1_existing: f64,
    /// F1 of the new side.
    pub f1_new: f64,
    /// Importance of the added metric in the full model.
    pub importance: f64,
}

/// Table 8: new detection performance as metrics are added one by one.
pub fn table08_new_detection_ablation(config: &ExperimentConfig) -> Vec<Table8Row> {
    let (world, corpus) = config.materialize();
    let golds = config.gold_standards(&world, &corpus);
    let kb = world.kb();
    let weights = ltee_matching::MatcherWeights::default();
    let mapping = match_corpus(&corpus, kb, &weights, &config.pipeline.schema, None);

    let metric_sets: Vec<Vec<EntityMetricKind>> =
        (1..=EntityMetricKind::ALL.len()).map(|n| EntityMetricKind::ALL[..n].to_vec()).collect();

    let mut per_set_acc: Vec<Vec<f64>> = vec![Vec::new(); metric_sets.len()];
    let mut per_set_f1e: Vec<Vec<f64>> = vec![Vec::new(); metric_sets.len()];
    let mut per_set_f1n: Vec<Vec<f64>> = vec![Vec::new(); metric_sets.len()];
    let mut importance_acc: HashMap<&'static str, (f64, usize)> = HashMap::new();

    let mut interner = Interner::new();
    for gold in &golds {
        let class = gold.class;
        let index = kb.label_index(class);
        let implicit = ImplicitAttributes::build(&corpus, &mapping, kb, class, &index);

        // Entities from the gold clusters (the Table 8 evaluation isolates
        // new detection by using gold clustering).
        let clusters: Vec<Vec<RowRef>> = gold.clusters.iter().map(|c| c.rows.clone()).collect();
        let entities = create_entities(&clusters, &corpus, &mapping, kb, class, &config.pipeline.fusion);
        let contexts: Vec<EntityContext> = entities
            .into_iter()
            .map(|e| EntityContext::build(e, &corpus, &implicit, &mut interner))
            .collect();
        let truths: Vec<EntityTruth> = gold
            .clusters
            .iter()
            .map(|c| EntityTruth { is_new: c.is_new, instance: c.kb_instance })
            .collect();
        let instance_truth: Vec<Option<ltee_kb::InstanceId>> =
            gold.clusters.iter().map(|c| c.kb_instance).collect();

        // Grouped split.
        let groups = gold.cluster_fold_groups();
        let folds = grouped_k_folds(&groups, 3, config.seed);
        let train_idx = &folds[0].train;
        let test_idx = &folds[0].test;

        for (set_idx, metrics) in metric_sets.iter().enumerate() {
            let train_contexts: Vec<EntityContext> =
                train_idx.iter().map(|&i| contexts[i].clone()).collect();
            let train_truth: Vec<Option<ltee_kb::InstanceId>> =
                train_idx.iter().map(|&i| instance_truth[i]).collect();
            let ds = build_entity_pair_dataset(
                &train_contexts,
                &train_truth,
                kb,
                &index,
                metrics,
                &config.pipeline.entity_training,
                &mut interner,
            );
            if ds.positives() == 0 || ds.negatives() == 0 {
                continue;
            }
            let model = train_entity_model(&ds, metrics.clone(), &config.pipeline.entity_training);
            let test_contexts: Vec<EntityContext> =
                test_idx.iter().map(|&i| contexts[i].clone()).collect();
            let results = detect_new(
                &test_contexts,
                kb,
                &index,
                &model,
                &config.pipeline.newdetect,
                &mut interner,
            );
            let outcomes: Vec<_> = results.iter().map(|r| r.outcome).collect();
            let test_truths: Vec<EntityTruth> = test_idx.iter().map(|&i| truths[i]).collect();
            let eval = evaluate_new_detection(&outcomes, &test_truths);
            per_set_acc[set_idx].push(eval.accuracy);
            per_set_f1e[set_idx].push(eval.f1_existing);
            per_set_f1n[set_idx].push(eval.f1_new);

            if metrics.len() == EntityMetricKind::ALL.len() {
                for (kind, importance) in model.metric_importances() {
                    let entry = importance_acc.entry(kind.name()).or_insert((0.0, 0));
                    entry.0 += importance;
                    entry.1 += 1;
                }
            }
        }
    }

    metric_sets
        .iter()
        .enumerate()
        .map(|(i, metrics)| {
            let added = metrics.last().expect("non-empty metric set");
            let avg = |v: &Vec<f64>| if v.is_empty() { 0.0 } else { v.iter().sum::<f64>() / v.len() as f64 };
            let importance = importance_acc
                .get(added.name())
                .map(|(sum, n)| if *n == 0 { 0.0 } else { sum / *n as f64 })
                .unwrap_or(0.0);
            Table8Row {
                added_metric: added.name().to_string(),
                accuracy: avg(&per_set_acc[i]),
                f1_existing: avg(&per_set_f1e[i]),
                f1_new: avg(&per_set_f1n[i]),
                importance,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Tables 9 & 10 — end-to-end gold standard evaluation
// ---------------------------------------------------------------------------

/// One row of Table 9.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table9Row {
    /// Class name.
    pub class: String,
    /// Whether gold-standard clustering ("GS") or the system's clustering
    /// ("ALL") was used.
    pub clustering: String,
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
    /// F1.
    pub f1: f64,
}

/// One row of Table 10.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table10Row {
    /// Class name.
    pub class: String,
    /// Which components used gold annotations ("GS+GS", "GS+ALL", "ALL+ALL").
    pub setting: String,
    /// Facts-found F1 per fusion scoring method.
    pub f1_voting: f64,
    /// F1 with KBT scoring.
    pub f1_kbt: f64,
    /// F1 with MATCHING scoring.
    pub f1_matching: f64,
}

/// The end-to-end gold standard evaluation: Tables 9 and 10 computed from a
/// single set of pipeline runs.
pub fn table09_10_end_to_end(config: &ExperimentConfig) -> (Vec<Table9Row>, Vec<Table10Row>) {
    let (world, corpus) = config.materialize();
    let golds = config.gold_standards(&world, &corpus);
    let kb = world.kb();
    let models = train_models(&corpus, kb, &golds, &config.pipeline).expect("experiment corpora are trainable");
    let pipeline = Pipeline::new(kb, models, config.pipeline.clone());
    let output = pipeline.run(&corpus).expect("experiment corpora are non-empty");

    let mut table9 = Vec::new();
    let mut table10 = Vec::new();
    let mut avg_all: Vec<(f64, f64, f64)> = Vec::new();

    let mut interner = Interner::new();
    for gold in &golds {
        let class = gold.class;
        let Some(class_output) = output.class(class) else { continue };
        let index = kb.label_index(class);
        let implicit = ImplicitAttributes::build(&corpus, &output.mapping, kb, class, &index);

        // --- "GS" clustering: entities fused from the gold clusters. -------
        let gs_clusters: Vec<Vec<RowRef>> = gold.clusters.iter().map(|c| c.rows.clone()).collect();
        let gs_entities =
            create_entities(&gs_clusters, &corpus, &output.mapping, kb, class, &config.pipeline.fusion);
        let gs_contexts: Vec<EntityContext> = gs_entities
            .iter()
            .cloned()
            .map(|e| EntityContext::build(e, &corpus, &implicit, &mut interner))
            .collect();
        let gs_results = detect_new(
            &gs_contexts,
            kb,
            &index,
            &pipeline.models().entity_model,
            &config.pipeline.newdetect,
            &mut interner,
        );
        let gs_outcomes: Vec<_> = gs_results.iter().map(|r| r.outcome).collect();
        let gs_eval = evaluate_new_instances(&gs_entities, &gs_outcomes, gold);
        table9.push(Table9Row {
            class: class.short_name().to_string(),
            clustering: "GS".into(),
            precision: gs_eval.precision,
            recall: gs_eval.recall,
            f1: gs_eval.f1,
        });

        // --- "ALL": the system's own clustering. ----------------------------
        let all_outcomes = class_output.outcomes();
        let all_eval = evaluate_new_instances(&class_output.entities, &all_outcomes, gold);
        table9.push(Table9Row {
            class: class.short_name().to_string(),
            clustering: "ALL".into(),
            precision: all_eval.precision,
            recall: all_eval.recall,
            f1: all_eval.f1,
        });
        avg_all.push((all_eval.precision, all_eval.recall, all_eval.f1));

        // --- Table 10: facts found per scoring method. -----------------------
        for (setting, clusters, outcomes) in [
            ("GS+ALL", &gs_clusters, &gs_outcomes),
            ("ALL+ALL", &class_output.clusters, &all_outcomes),
        ] {
            let mut f1s = HashMap::new();
            for method in ScoringMethod::ALL {
                let fusion = EntityCreationConfig { scoring: method, ..config.pipeline.fusion.clone() };
                let entities = create_entities(clusters, &corpus, &output.mapping, kb, class, &fusion);
                let eval = evaluate_facts(&entities, outcomes, gold, kb, class);
                f1s.insert(method, eval.f1);
            }
            table10.push(Table10Row {
                class: class.short_name().to_string(),
                setting: setting.to_string(),
                f1_voting: f1s[&ScoringMethod::Voting],
                f1_kbt: f1s[&ScoringMethod::Kbt],
                f1_matching: f1s[&ScoringMethod::Matching],
            });
        }
    }

    // Average row (paper Table 9 last row).
    if !avg_all.is_empty() {
        let n = avg_all.len() as f64;
        table9.push(Table9Row {
            class: "Average".into(),
            clustering: "ALL".into(),
            precision: avg_all.iter().map(|r| r.0).sum::<f64>() / n,
            recall: avg_all.iter().map(|r| r.1).sum::<f64>() / n,
            f1: avg_all.iter().map(|r| r.2).sum::<f64>() / n,
        });
    }
    (table9, table10)
}

// ---------------------------------------------------------------------------
// Tables 11 & 12 — large-scale profiling
// ---------------------------------------------------------------------------

/// One row of Table 11.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table11Row {
    /// Class name.
    pub class: String,
    /// Total rows matched to the class.
    pub total_rows: usize,
    /// Entities matched to existing instances.
    pub existing_entities: usize,
    /// Distinct knowledge base instances they were matched to.
    pub matched_kb_instances: usize,
    /// Entities classified as new.
    pub new_entities: usize,
    /// Facts of the new entities.
    pub new_facts: usize,
    /// Relative increase in instances vs the knowledge base.
    pub instance_increase: f64,
    /// Relative increase in facts vs the knowledge base.
    pub fact_increase: f64,
    /// Accuracy of a sample of new entities (truly new and of the class).
    pub new_entity_accuracy: f64,
    /// Accuracy of the facts of those new entities.
    pub new_fact_accuracy: f64,
}

/// The output of the large-scale profiling run: Table 11 rows plus the
/// per-property densities of the new entities (Table 12).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfilingResult {
    /// Table 11 rows.
    pub table11: Vec<Table11Row>,
    /// Table 12 rows.
    pub table12: Vec<DensityRow>,
}

/// Tables 11 & 12: run the pipeline over the full corpus and profile the new
/// entities. Accuracy is measured against the synthetic world's ground truth
/// (the stand-in for the paper's manual inspection of a stratified sample).
pub fn table11_12_profiling(config: &ExperimentConfig) -> ProfilingResult {
    let (world, corpus) = config.materialize();
    let golds = config.gold_standards(&world, &corpus);
    let kb = world.kb();
    let models = train_models(&corpus, kb, &golds, &config.pipeline).expect("experiment corpora are trainable");
    let pipeline = Pipeline::new(kb, models, config.pipeline.clone());
    let output = pipeline.run(&corpus).expect("experiment corpora are non-empty");

    let mut table11 = Vec::new();
    let mut table12 = Vec::new();

    for &class in &CLASS_KEYS {
        let Some(class_output) = output.class(class) else { continue };
        let gold = golds.iter().find(|g| g.class == class).expect("gold per class");
        let total_rows = output.mapping.class_rows(&corpus, class).len();

        let existing: Vec<_> = class_output.existing_entities();
        let matched_instances: std::collections::HashSet<_> = existing.iter().map(|(_, id)| *id).collect();
        let new_entities = class_output.new_entities();
        let new_facts: usize = new_entities.iter().map(|e| e.fact_count()).sum();

        // Accuracy against the world: an entity counts as a correct new
        // entity when its rows map to a gold cluster that is truly new and
        // of the target class.
        let mut correct_new = 0usize;
        let mut world_entity_of: Vec<Option<ltee_kb::EntityId>> = Vec::new();
        for entity in &new_entities {
            let cluster = ltee_eval::instances::entity_gold_cluster(&entity.rows, gold);
            match cluster {
                Some(ci) if gold.clusters[ci].is_new && gold.clusters[ci].is_target_class => {
                    correct_new += 1;
                    world_entity_of.push(Some(gold.clusters[ci].entity));
                }
                Some(ci) => world_entity_of.push(Some(gold.clusters[ci].entity)),
                None => world_entity_of.push(None),
            }
        }
        let new_entity_accuracy =
            if new_entities.is_empty() { 0.0 } else { correct_new as f64 / new_entities.len() as f64 };
        let new_fact_accuracy = fact_accuracy_against_world(
            &new_entities,
            &world,
            |e| {
                new_entities
                    .iter()
                    .position(|n| std::ptr::eq(*n, e))
                    .and_then(|i| world_entity_of[i])
            },
            class,
        );

        let kb_instances = kb.class_instance_count(class);
        let kb_facts = kb.class_fact_count(class);
        table11.push(Table11Row {
            class: class.short_name().to_string(),
            total_rows,
            existing_entities: existing.len(),
            matched_kb_instances: matched_instances.len(),
            new_entities: new_entities.len(),
            new_facts,
            instance_increase: if kb_instances == 0 { 0.0 } else { new_entities.len() as f64 / kb_instances as f64 },
            fact_increase: if kb_facts == 0 { 0.0 } else { new_facts as f64 / kb_facts as f64 },
            new_entity_accuracy,
            new_fact_accuracy,
        });

        // Table 12: property densities of the new entities.
        let mut per_property: HashMap<String, usize> = HashMap::new();
        for entity in &new_entities {
            for (prop, _, _) in &entity.facts {
                *per_property.entry(prop.clone()).or_insert(0) += 1;
            }
        }
        let mut rows: Vec<DensityRow> = per_property
            .into_iter()
            .map(|(property, facts)| DensityRow {
                class: class.short_name().to_string(),
                property,
                facts,
                density: if new_entities.is_empty() { 0.0 } else { facts as f64 / new_entities.len() as f64 },
            })
            .collect();
        // Property name as tiebreak: the rows come out of a HashMap, so
        // equal densities would otherwise print in hash order.
        rows.sort_by(|a, b| {
            b.density
                .partial_cmp(&a.density)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.property.cmp(&b.property))
        });
        table12.extend(rows);
    }

    ProfilingResult { table11, table12 }
}

// ---------------------------------------------------------------------------
// Section 6 — ranked evaluation (set expansion comparison)
// ---------------------------------------------------------------------------

/// Section 6 ranked evaluation: rank the entities returned as new by their
/// distance to the closest existing instance (higher distance first) and
/// evaluate MAP@256, P@5 and P@20 against the gold standard.
pub fn ranked_set_expansion_eval(config: &ExperimentConfig) -> RankedEvaluation {
    let (world, corpus) = config.materialize();
    let golds = config.gold_standards(&world, &corpus);
    let kb = world.kb();
    let models = train_models(&corpus, kb, &golds, &config.pipeline).expect("experiment corpora are trainable");
    let pipeline = Pipeline::new(kb, models, config.pipeline.clone());
    let output = pipeline.run(&corpus).expect("experiment corpora are non-empty");

    // Collect (score, correct) across classes; lower best_score = farther
    // from any existing instance = ranked higher.
    let mut ranked: Vec<(f64, bool)> = Vec::new();
    for class_output in &output.classes {
        let gold = golds.iter().find(|g| g.class == class_output.class).expect("gold per class");
        for (entity, result) in class_output.entities.iter().zip(class_output.results.iter()) {
            if !result.outcome.is_new() {
                continue;
            }
            let correct = ltee_eval::instances::entity_gold_cluster(&entity.rows, gold)
                .map(|ci| gold.clusters[ci].is_new && gold.clusters[ci].is_target_class)
                .unwrap_or(false);
            ranked.push((result.best_score, correct));
        }
    }
    ranked.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let flags: Vec<bool> = ranked.into_iter().map(|(_, c)| c).collect();
    RankedEvaluation::from_ranked(&flags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kb_profile_tables_have_three_classes() {
        let (world, corpus) = ExperimentConfig::tiny().materialize();
        assert_eq!(table01_kb_profile(&world).len(), 3);
        let t2 = table02_property_density(&world);
        assert_eq!(t2.len(), 11 + 7 + 5);
        let t3 = table03_corpus_stats(&corpus);
        assert!(t3.tables > 0);
    }

    #[test]
    fn table04_and_05_have_rows_per_class() {
        let config = ExperimentConfig::tiny();
        let (world, corpus) = config.materialize();
        let mapping = match_corpus(
            &corpus,
            world.kb(),
            &ltee_matching::MatcherWeights::default(),
            &config.pipeline.schema,
            None,
        );
        let t4 = table04_value_correspondences(&corpus, &mapping);
        assert_eq!(t4.len(), 3);
        assert!(t4.iter().any(|r| r.matched_values > 0));
        let t5 = table05_gold_standard(&world, &corpus);
        assert_eq!(t5.len(), 3);
        assert!(t5.iter().all(|r| r.stats.rows > 0));
    }

    #[test]
    fn restrict_gold_reindexes_facts() {
        let config = ExperimentConfig::tiny();
        let (world, corpus) = config.materialize();
        let gold = GoldStandard::build(&world, &corpus, ltee_kb::ClassKey::Song);
        let subset: Vec<usize> = (0..gold.clusters.len().min(5)).collect();
        let restricted = restrict_gold(&gold, &subset);
        assert_eq!(restricted.clusters.len(), subset.len());
        for f in &restricted.facts {
            assert!(f.cluster < restricted.clusters.len());
        }
    }
}
