//! Durable checkpoints of accumulated serve state.
//!
//! [`crate::artifact::ModelArtifact`] (PR 3) made the *models* persistent;
//! this module makes the *accumulated knowledge-base state* persistent: a
//! [`PipelineCheckpoint`] captures everything an [`IncrementalPipeline`]
//! has learned from the stream so far, in the same versioned / checksummed
//! / bounds-checked binary discipline as the artifact format, so a serving
//! process can restart (or a second process can spawn) without re-ingesting
//! the corpus.
//!
//! ## What is persisted vs. rebuilt
//!
//! The checkpoint persists the **expensive model-driven decisions** and
//! rebuilds the **cheap derived state** on restore:
//!
//! * persisted — the accumulated corpus (tables in arrival order), the
//!   accumulated schema mapping, and per class the interner arena (every
//!   string, in mint order, so every `Sym` id is reproduced exactly), the
//!   cluster assignments, fused entities and new-detection results;
//! * rebuilt — row contexts, the prefix blocking index and per-cluster
//!   block keys ([`StreamingClusterer::from_parts`]), frozen PHI vectors
//!   (replayed per table in arrival order), implicit attributes and KBT
//!   scores (both pure functions of corpus + mapping + frozen KB).
//!
//! Skipping schema matching, pair scoring and fusion on restore is what
//! makes cold recovery decisively faster than re-ingesting the corpus
//! (`benches/recovery_throughput.rs` gates this in CI); the incremental-
//! equivalence contract (every rebuilt structure is a deterministic
//! function of the persisted decisions) is what makes the restored
//! pipeline **bit-identical** to the one that wrote the checkpoint —
//! `tests/recovery_equivalence.rs` proves it end to end.
//!
//! ## File format (version 2)
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"LTEECKP\x01"
//! 8       4     format version (u32 LE) — currently 2
//! 12      8     config fingerprint (u64 LE, `config_fingerprint`)
//! 20      8     applied batches (u64 LE) — non-empty ingests == snapshot version
//! 28      8     payload length in bytes (u64 LE)
//! 36      8     payload FNV-1a64 checksum (u64 LE)
//! 44      …     payload: corpus · mapping · per-class interner strings /
//!               clusters/entities/results, encoded via `ltee_ml::codec`
//! ```
//!
//! Version 2 (the class-sharding PR) moved the single pipeline-wide
//! interner arena into the per-class sections: each class owns its interner
//! at serve time, so the checkpoint persists one string list per class.
//! Version-1 files are refused with
//! [`CheckpointError::UnsupportedVersion`] — the global arena cannot be
//! split faithfully after the fact. The payload remains **logical per-class
//! state only**: no shard layout is ever persisted, so any process can
//! restore a checkpoint under any [`crate::ShardPlan`] (shard and thread
//! counts are both excluded from the config fingerprint).
//!
//! Decoding validates magic, version, length and checksum before touching
//! the payload, every collection length is bounds-checked against the
//! remaining stream (no allocation bombs), and the decoded state is
//! cross-validated (tables well-formed, ids unique, clusters partition the
//! mapped rows in founding order) before any of it is trusted. Restoring
//! additionally rejects a checkpoint written under a different inference
//! configuration ([`CheckpointError::ConfigMismatch`]).

use std::collections::HashSet;
use std::path::Path;

use ltee_clustering::{
    build_row_contexts, ImplicitAttributes, StreamingClusterer, StreamingPhi,
};
use ltee_fusion::{kbt_scores_for_tables, Entity, ScoringMethod};
use ltee_intern::Interner;
use ltee_kb::{ClassKey, KnowledgeBase, CLASS_KEYS};
use ltee_matching::{AttributeMatch, CorpusMapping, TableMapping};
use ltee_ml::codec::{fnv1a64, ByteReader, ByteWriter, CodecError};
use ltee_newdetect::{NewDetectionOutcome, NewDetectionResult};
use ltee_types::{DataType, Date, DateGranularity, DetectedType, Value};
use ltee_webtables::{Column, Corpus, RowRef, TableId, TableTruth, WebTable};

use crate::artifact::config_fingerprint;
use crate::incremental::{class_rows_in_arrival_order, ClassState, IncrementalPipeline};
use crate::pipeline::{PipelineConfig, TrainedModels};

/// Magic bytes opening every checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"LTEECKP\x01";

/// The checkpoint format version this build writes and reads.
pub const CHECKPOINT_VERSION: u32 = 2;

/// Offset where the checkpoint payload starts (after magic, version,
/// fingerprint, applied-batch count, payload length and checksum).
pub const CHECKPOINT_PAYLOAD_START: usize = 44;

/// Errors raised while encoding, decoding, validating or restoring a
/// checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Reading or writing the checkpoint file failed.
    Io(std::io::Error),
    /// The input does not start with the checkpoint magic.
    BadMagic,
    /// The checkpoint was written by an unknown format version.
    UnsupportedVersion(u32),
    /// The payload failed its checksum, length or cross-validation check.
    Corrupted(String),
    /// A payload field could not be decoded.
    Decode(CodecError),
    /// The checkpoint was written under a different inference configuration.
    ConfigMismatch {
        /// Fingerprint stored in the checkpoint.
        checkpoint: u64,
        /// Fingerprint of the configuration the caller supplied.
        config: u64,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic => {
                write!(f, "not an LTEE state checkpoint (bad magic header)")
            }
            CheckpointError::UnsupportedVersion(v) => write!(
                f,
                "unsupported checkpoint format version {v} (this build reads version {CHECKPOINT_VERSION})"
            ),
            CheckpointError::Corrupted(why) => write!(f, "checkpoint is corrupted: {why}"),
            CheckpointError::Decode(e) => write!(f, "checkpoint payload is malformed: {e}"),
            CheckpointError::ConfigMismatch { checkpoint, config } => write!(
                f,
                "checkpoint was written under a different configuration \
                 (checkpoint fingerprint {checkpoint:#018x}, pipeline config fingerprint {config:#018x}); \
                 recover with the writing process's config or start a fresh store"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for CheckpointError {
    fn from(e: CodecError) -> Self {
        CheckpointError::Decode(e)
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

// ───────────────────────── value / table / mapping codecs ────────────────

fn encode_value_into(value: &Value, w: &mut ByteWriter) {
    match value {
        Value::Text(s) => {
            w.write_u8(0);
            w.write_str(s);
        }
        Value::Nominal(s) => {
            w.write_u8(1);
            w.write_str(s);
        }
        Value::InstanceRef(s) => {
            w.write_u8(2);
            w.write_str(s);
        }
        Value::Date(d) => {
            w.write_u8(3);
            w.write_u32(d.year as u32);
            w.write_u8(d.month);
            w.write_u8(d.day);
            w.write_u8(match d.granularity {
                DateGranularity::Year => 0,
                DateGranularity::Day => 1,
            });
        }
        Value::Quantity(q) => {
            w.write_u8(4);
            w.write_f64(*q);
        }
        Value::NominalInt(i) => {
            w.write_u8(5);
            w.write_u64(*i as u64);
        }
    }
}

fn decode_value_from(r: &mut ByteReader<'_>) -> Result<Value, CodecError> {
    match r.read_u8("value tag")? {
        0 => Ok(Value::Text(r.read_str("text value")?)),
        1 => Ok(Value::Nominal(r.read_str("nominal value")?)),
        2 => Ok(Value::InstanceRef(r.read_str("instance-ref value")?)),
        3 => {
            let year = r.read_u32("date year")? as i32;
            let month = r.read_u8("date month")?;
            let day = r.read_u8("date day")?;
            let granularity = match r.read_u8("date granularity")? {
                0 => DateGranularity::Year,
                1 => DateGranularity::Day,
                tag => return Err(CodecError::InvalidTag { what: "date granularity", tag }),
            };
            Ok(Value::Date(Date { year, month, day, granularity }))
        }
        4 => Ok(Value::Quantity(r.read_f64("quantity value")?)),
        5 => Ok(Value::NominalInt(r.read_u64("nominal-int value")? as i64)),
        tag => Err(CodecError::InvalidTag { what: "value", tag }),
    }
}

fn data_type_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Text => 0,
        DataType::NominalString => 1,
        DataType::InstanceReference => 2,
        DataType::Date => 3,
        DataType::Quantity => 4,
        DataType::NominalInteger => 5,
    }
}

fn data_type_from_tag(tag: u8) -> Result<DataType, CodecError> {
    Ok(match tag {
        0 => DataType::Text,
        1 => DataType::NominalString,
        2 => DataType::InstanceReference,
        3 => DataType::Date,
        4 => DataType::Quantity,
        5 => DataType::NominalInteger,
        tag => return Err(CodecError::InvalidTag { what: "data type", tag }),
    })
}

fn detected_type_tag(dt: DetectedType) -> u8 {
    match dt {
        DetectedType::Text => 0,
        DetectedType::Date => 1,
        DetectedType::Quantity => 2,
    }
}

fn detected_type_from_tag(tag: u8) -> Result<DetectedType, CodecError> {
    Ok(match tag {
        0 => DetectedType::Text,
        1 => DetectedType::Date,
        2 => DetectedType::Quantity,
        tag => return Err(CodecError::InvalidTag { what: "detected type", tag }),
    })
}

fn class_key_from_code(code: u8) -> Result<ClassKey, CodecError> {
    ClassKey::from_code(code).ok_or(CodecError::InvalidTag { what: "class key", tag: code })
}

fn encode_table_into(table: &WebTable, w: &mut ByteWriter) {
    w.write_u64(table.id.raw());
    w.write_len(table.columns.len());
    for column in &table.columns {
        w.write_str(&column.header);
        w.write_str_slice(&column.cells);
    }
    w.write_u8(table.truth.class.code());
    w.write_usize(table.truth.label_column);
    w.write_len(table.truth.column_property.len());
    for prop in &table.truth.column_property {
        w.write_bool(prop.is_some());
        if let Some(p) = prop {
            w.write_str(p);
        }
    }
    w.write_len(table.truth.row_entity.len());
    for entity in &table.truth.row_entity {
        w.write_u64(entity.raw());
    }
}

fn decode_table_from(r: &mut ByteReader<'_>) -> Result<WebTable, CheckpointError> {
    let id = TableId(r.read_u64("table id")?);
    let num_columns = r.read_len("table columns", 8)?;
    let mut columns = Vec::with_capacity(num_columns);
    for _ in 0..num_columns {
        let header = r.read_str("column header")?;
        let cells = r.read_str_vec("column cells")?;
        columns.push(Column { header, cells });
    }
    let class = class_key_from_code(r.read_u8("truth class")?)?;
    let label_column = r.read_usize("truth label column")?;
    let num_props = r.read_len("truth column properties", 1)?;
    let mut column_property = Vec::with_capacity(num_props);
    for _ in 0..num_props {
        column_property.push(if r.read_bool("truth property flag")? {
            Some(r.read_str("truth property")?)
        } else {
            None
        });
    }
    let num_entities = r.read_len("truth row entities", 8)?;
    let mut row_entity = Vec::with_capacity(num_entities);
    for _ in 0..num_entities {
        row_entity.push(ltee_kb::EntityId(r.read_u64("truth row entity")?));
    }
    let table = WebTable {
        id,
        columns,
        truth: TableTruth { class, label_column, column_property, row_entity },
    };
    table
        .validate()
        .map_err(|why| CheckpointError::Corrupted(format!("table {}: {why}", id.raw())))?;
    Ok(table)
}

/// Encode a corpus (tables in arrival order). Shared by the checkpoint
/// payload and by WAL batch records (`ltee-store`), so a replayed batch and
/// a checkpointed corpus go through the exact same byte layout.
pub fn encode_corpus(corpus: &Corpus) -> Vec<u8> {
    let mut w = ByteWriter::new();
    encode_corpus_into(corpus, &mut w);
    w.into_bytes()
}

fn encode_corpus_into(corpus: &Corpus, w: &mut ByteWriter) {
    w.write_len(corpus.len());
    for table in corpus.tables() {
        encode_table_into(table, w);
    }
}

/// Decode a corpus encoded by [`encode_corpus`], validating every table and
/// rejecting duplicate table ids. Requires the reader to be fully consumed.
pub fn decode_corpus(bytes: &[u8]) -> Result<Corpus, CheckpointError> {
    let mut r = ByteReader::new(bytes);
    let corpus = decode_corpus_from(&mut r)?;
    r.expect_eof()?;
    Ok(corpus)
}

fn decode_corpus_from(r: &mut ByteReader<'_>) -> Result<Corpus, CheckpointError> {
    let num_tables = r.read_len("corpus tables", 16)?;
    let mut tables = Vec::with_capacity(num_tables);
    let mut seen = HashSet::new();
    for _ in 0..num_tables {
        let table = decode_table_from(r)?;
        if !seen.insert(table.id) {
            return Err(CheckpointError::Corrupted(format!(
                "duplicate table id {} in corpus",
                table.id.raw()
            )));
        }
        tables.push(table);
    }
    Ok(Corpus::from_tables(tables))
}

fn encode_mapping_into(mapping: &TableMapping, w: &mut ByteWriter) {
    w.write_u64(mapping.table.raw());
    w.write_bool(mapping.class.is_some());
    if let Some(class) = mapping.class {
        w.write_u8(class.code());
    }
    w.write_f64(mapping.class_score);
    w.write_usize(mapping.label_column);
    w.write_len(mapping.detected_types.len());
    for &dt in &mapping.detected_types {
        w.write_u8(detected_type_tag(dt));
    }
    w.write_len(mapping.correspondences.len());
    for c in &mapping.correspondences {
        w.write_bool(c.is_some());
        if let Some(m) = c {
            w.write_str(&m.property);
            w.write_u8(data_type_tag(m.data_type));
            w.write_f64(m.score);
        }
    }
}

fn decode_mapping_from(r: &mut ByteReader<'_>) -> Result<TableMapping, CheckpointError> {
    let table = TableId(r.read_u64("mapping table id")?);
    let class = if r.read_bool("mapping class flag")? {
        Some(class_key_from_code(r.read_u8("mapping class")?)?)
    } else {
        None
    };
    let class_score = r.read_f64("mapping class score")?;
    let label_column = r.read_usize("mapping label column")?;
    let num_types = r.read_len("mapping detected types", 1)?;
    let mut detected_types = Vec::with_capacity(num_types);
    for _ in 0..num_types {
        detected_types.push(detected_type_from_tag(r.read_u8("detected type")?)?);
    }
    let num_cols = r.read_len("mapping correspondences", 1)?;
    let mut correspondences = Vec::with_capacity(num_cols);
    for _ in 0..num_cols {
        correspondences.push(if r.read_bool("correspondence flag")? {
            let property = r.read_str("correspondence property")?;
            let data_type = data_type_from_tag(r.read_u8("correspondence data type")?)?;
            let score = r.read_f64("correspondence score")?;
            Some(AttributeMatch { property, data_type, score })
        } else {
            None
        });
    }
    Ok(TableMapping { table, class, class_score, label_column, detected_types, correspondences })
}

fn encode_entity_into(entity: &Entity, w: &mut ByteWriter) {
    // The class is implied by the per-class section the entity sits in.
    w.write_len(entity.rows.len());
    for row in &entity.rows {
        w.write_u64(row.table.raw());
        w.write_usize(row.row);
    }
    w.write_str_slice(&entity.labels);
    w.write_len(entity.facts.len());
    for (property, value, score) in &entity.facts {
        w.write_str(property);
        encode_value_into(value, w);
        w.write_f64(*score);
    }
}

fn decode_entity_from(r: &mut ByteReader<'_>, class: ClassKey) -> Result<Entity, CheckpointError> {
    let num_rows = r.read_len("entity rows", 16)?;
    let mut rows = Vec::with_capacity(num_rows);
    for _ in 0..num_rows {
        let table = TableId(r.read_u64("entity row table")?);
        let row = r.read_usize("entity row index")?;
        rows.push(RowRef::new(table, row));
    }
    let labels = r.read_str_vec("entity labels")?;
    let num_facts = r.read_len("entity facts", 14)?;
    let mut facts = Vec::with_capacity(num_facts);
    for _ in 0..num_facts {
        let property = r.read_str("fact property")?;
        let value = decode_value_from(r)?;
        let score = r.read_f64("fact score")?;
        facts.push((property, value, score));
    }
    Ok(Entity { class, rows, labels, facts })
}

fn encode_result_into(result: &NewDetectionResult, w: &mut ByteWriter) {
    w.write_usize(result.entity);
    match result.outcome {
        NewDetectionOutcome::New => w.write_u8(0),
        NewDetectionOutcome::Existing(instance) => {
            w.write_u8(1);
            w.write_u64(instance.raw());
        }
    }
    w.write_f64(result.best_score);
    w.write_usize(result.candidate_count);
}

fn decode_result_from(r: &mut ByteReader<'_>) -> Result<NewDetectionResult, CheckpointError> {
    let entity = r.read_usize("result entity")?;
    let outcome = match r.read_u8("result outcome")? {
        0 => NewDetectionOutcome::New,
        1 => NewDetectionOutcome::Existing(ltee_kb::InstanceId(r.read_u64("result instance")?)),
        tag => return Err(CodecError::InvalidTag { what: "detection outcome", tag }.into()),
    };
    let best_score = r.read_f64("result best score")?;
    let candidate_count = r.read_usize("result candidate count")?;
    Ok(NewDetectionResult { entity, outcome, best_score, candidate_count })
}

// ─────────────────────────── the checkpoint itself ───────────────────────

/// The persisted per-class decisions (parallel to [`CLASS_KEYS`]).
#[derive(Debug, Clone)]
struct ClassDump {
    /// The class's interner arena in mint order — re-interning reproduces
    /// every `Sym` id of the class exactly.
    interner: Vec<String>,
    clusters: Vec<Vec<usize>>,
    entities: Vec<Entity>,
    results: Vec<NewDetectionResult>,
}

/// A full checkpoint of [`IncrementalPipeline`] accumulated state.
///
/// Capture one with [`IncrementalPipeline::checkpoint`], persist it with
/// [`PipelineCheckpoint::encode`] / [`PipelineCheckpoint::save`], and bring
/// a fresh process back to the exact pre-checkpoint state with
/// [`PipelineCheckpoint::decode`] + [`PipelineCheckpoint::restore`]. See
/// the [module docs](self) for the format and the persisted/rebuilt split.
#[derive(Debug, Clone)]
pub struct PipelineCheckpoint {
    /// Fingerprint of the inference configuration the state was produced
    /// under (see [`config_fingerprint`]).
    pub fingerprint: u64,
    /// Number of non-empty micro-batches applied before the checkpoint was
    /// taken — equals the published snapshot version of the serve layer.
    pub applied_batches: u64,
    tables: Vec<WebTable>,
    mappings: Vec<TableMapping>,
    classes: Vec<ClassDump>,
}

impl IncrementalPipeline<'_> {
    /// Capture a checkpoint of the accumulated state. `applied_batches` is
    /// the number of non-empty batches ingested so far (the serve layer's
    /// snapshot version); the pipeline itself does not track batch
    /// boundaries, so the durability layer supplies it.
    pub fn checkpoint(&self, applied_batches: u64) -> PipelineCheckpoint {
        let mut mappings: Vec<TableMapping> = self.mapping.tables().cloned().collect();
        // Canonical byte stream: the mapping lives in a HashMap, so encode
        // it sorted by table id (arrival order is already canonical for
        // everything else).
        mappings.sort_by_key(|m| m.table);
        PipelineCheckpoint {
            fingerprint: config_fingerprint(&self.config),
            applied_batches,
            tables: self.corpus.tables().to_vec(),
            mappings,
            classes: self
                .states
                .iter()
                .map(|s| ClassDump {
                    interner: s.interner.iter().map(|(_, str)| str.to_string()).collect(),
                    clusters: s.clusterer.clusters().to_vec(),
                    entities: s.entities.clone(),
                    results: s.results.clone(),
                })
                .collect(),
        }
    }
}

impl PipelineCheckpoint {
    /// Encode the checkpoint into its binary file format.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.write_len(self.tables.len());
        for table in &self.tables {
            encode_table_into(table, &mut w);
        }
        w.write_len(self.mappings.len());
        for mapping in &self.mappings {
            encode_mapping_into(mapping, &mut w);
        }
        w.write_len(self.classes.len());
        for dump in &self.classes {
            w.write_str_slice(&dump.interner);
            w.write_len(dump.clusters.len());
            for cluster in &dump.clusters {
                w.write_len(cluster.len());
                for &row in cluster {
                    w.write_u32(row as u32);
                }
            }
            w.write_len(dump.entities.len());
            for entity in &dump.entities {
                encode_entity_into(entity, &mut w);
            }
            w.write_len(dump.results.len());
            for result in &dump.results {
                encode_result_into(result, &mut w);
            }
        }
        let payload = w.into_bytes();

        let mut out = Vec::with_capacity(CHECKPOINT_PAYLOAD_START + payload.len());
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.fingerprint.to_le_bytes());
        out.extend_from_slice(&self.applied_batches.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decode and fully validate a checkpoint from bytes.
    ///
    /// Header checks (magic, version, payload length, checksum) run before
    /// any payload byte is interpreted; payload decoding is bounds-checked
    /// throughout; and the decoded state is cross-validated — tables
    /// well-formed with unique ids, mapping entries unique, and per class
    /// the clusters must partition the mapped rows in founding order with
    /// results parallel to clusters. Anything else is a typed rejection,
    /// never a panic.
    pub fn decode(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < 8 || bytes[..8] != CHECKPOINT_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let mut header = ByteReader::new(&bytes[8..CHECKPOINT_PAYLOAD_START.min(bytes.len())]);
        let version = header.read_u32("checkpoint.version")?;
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let fingerprint = header.read_u64("checkpoint.fingerprint")?;
        let applied_batches = header.read_u64("checkpoint.applied_batches")?;
        let payload_len = header.read_u64("checkpoint.payload_len")? as usize;
        let checksum = header.read_u64("checkpoint.checksum")?;
        let payload = &bytes[CHECKPOINT_PAYLOAD_START..];
        if payload.len() != payload_len {
            return Err(CheckpointError::Corrupted(format!(
                "payload length mismatch: header says {payload_len} bytes, file holds {}",
                payload.len()
            )));
        }
        let actual = fnv1a64(payload);
        if actual != checksum {
            return Err(CheckpointError::Corrupted(format!(
                "payload checksum mismatch: header {checksum:#018x}, computed {actual:#018x}"
            )));
        }

        let mut r = ByteReader::new(payload);
        let corpus = decode_corpus_from(&mut r)?;
        let num_mappings = r.read_len("corpus mappings", 16)?;
        let mut mappings = Vec::with_capacity(num_mappings);
        let mut seen = HashSet::new();
        for _ in 0..num_mappings {
            let mapping = decode_mapping_from(&mut r)?;
            if !seen.insert(mapping.table) {
                return Err(CheckpointError::Corrupted(format!(
                    "duplicate mapping for table {}",
                    mapping.table.raw()
                )));
            }
            mappings.push(mapping);
        }
        let num_classes = r.read_len("class states", 12)?;
        if num_classes != CLASS_KEYS.len() {
            return Err(CheckpointError::Corrupted(format!(
                "checkpoint holds {num_classes} class states, this build has {}",
                CLASS_KEYS.len()
            )));
        }
        let mut classes = Vec::with_capacity(num_classes);
        for _ in 0..num_classes {
            let interner = r.read_str_vec("class interner strings")?;
            let num_clusters = r.read_len("clusters", 4)?;
            let mut clusters = Vec::with_capacity(num_clusters);
            for _ in 0..num_clusters {
                let num_rows = r.read_len("cluster rows", 4)?;
                let mut cluster = Vec::with_capacity(num_rows);
                for _ in 0..num_rows {
                    cluster.push(r.read_u32("cluster row index")? as usize);
                }
                clusters.push(cluster);
            }
            let num_entities = r.read_len("entities", 12)?;
            let mut entities = Vec::with_capacity(num_entities);
            for _ in 0..num_entities {
                entities.push(decode_entity_from(&mut r, ClassKey::Song)?);
            }
            let num_results = r.read_len("results", 25)?;
            let mut results = Vec::with_capacity(num_results);
            for _ in 0..num_results {
                results.push(decode_result_from(&mut r)?);
            }
            classes.push(ClassDump { interner, clusters, entities, results });
        }
        r.expect_eof()?;

        // Patch in the real class keys (the per-class sections are in
        // CLASS_KEYS order; the entity decoder used a placeholder).
        for (class, dump) in CLASS_KEYS.iter().zip(classes.iter_mut()) {
            for entity in &mut dump.entities {
                entity.class = *class;
            }
        }

        let checkpoint = PipelineCheckpoint {
            fingerprint,
            applied_batches,
            tables: corpus.tables().to_vec(),
            mappings,
            classes,
        };
        checkpoint.validate_state(&corpus)?;
        Ok(checkpoint)
    }

    /// Cross-validate the decoded state: per class, the clusters must
    /// partition the rows of that class's tables exactly once, in founding
    /// order, with entities/results parallel to the cluster list. This is
    /// what lets [`StreamingClusterer::from_parts`] assume well-formed
    /// inputs.
    fn validate_state(&self, corpus: &Corpus) -> Result<(), CheckpointError> {
        let mapping = CorpusMapping::from_tables(self.mappings.clone());
        for (&class, dump) in CLASS_KEYS.iter().zip(&self.classes) {
            let rows = class_rows_in_arrival_order(corpus, &mapping, class);
            if dump.entities.len() != dump.clusters.len()
                || dump.results.len() != dump.clusters.len()
            {
                return Err(CheckpointError::Corrupted(format!(
                    "{class}: {} clusters but {} entities / {} results",
                    dump.clusters.len(),
                    dump.entities.len(),
                    dump.results.len()
                )));
            }
            let mut assigned = vec![false; rows.len()];
            let mut previous_founder = None;
            for (ci, cluster) in dump.clusters.iter().enumerate() {
                if cluster.is_empty() {
                    return Err(CheckpointError::Corrupted(format!(
                        "{class}: cluster {ci} is empty"
                    )));
                }
                if previous_founder.is_some_and(|f| cluster[0] <= f) {
                    return Err(CheckpointError::Corrupted(format!(
                        "{class}: clusters are not in founding order at cluster {ci}"
                    )));
                }
                previous_founder = Some(cluster[0]);
                let mut previous_row = None;
                for &row in cluster {
                    if row >= rows.len() {
                        return Err(CheckpointError::Corrupted(format!(
                            "{class}: cluster {ci} references row {row} of {} mapped rows",
                            rows.len()
                        )));
                    }
                    if assigned[row] {
                        return Err(CheckpointError::Corrupted(format!(
                            "{class}: row {row} assigned to more than one cluster"
                        )));
                    }
                    if previous_row.is_some_and(|p| row <= p) {
                        return Err(CheckpointError::Corrupted(format!(
                            "{class}: cluster {ci} rows are not ascending"
                        )));
                    }
                    assigned[row] = true;
                    previous_row = Some(row);
                }
                if dump.results[ci].entity != ci {
                    return Err(CheckpointError::Corrupted(format!(
                        "{class}: result {ci} points at cluster {}",
                        dump.results[ci].entity
                    )));
                }
            }
            if let Some(unassigned) = assigned.iter().position(|&a| !a) {
                return Err(CheckpointError::Corrupted(format!(
                    "{class}: mapped row {unassigned} is in no cluster"
                )));
            }
        }
        Ok(())
    }

    /// Check that `config` matches the configuration the checkpoint's state
    /// was produced under.
    pub fn verify_config(&self, config: &PipelineConfig) -> Result<(), CheckpointError> {
        let fingerprint = config_fingerprint(config);
        if fingerprint == self.fingerprint {
            Ok(())
        } else {
            Err(CheckpointError::ConfigMismatch { checkpoint: self.fingerprint, config: fingerprint })
        }
    }

    /// Restore an [`IncrementalPipeline`] to the exact state it had when
    /// the checkpoint was captured — bit-identical, including every `Sym`
    /// id and every `f64` bit pattern.
    ///
    /// Rebuilds the derived state (contexts, blocking, PHI, implicit
    /// attributes, KBT scores) from the persisted decisions; see the
    /// [module docs](self). Fails with [`CheckpointError::ConfigMismatch`]
    /// when `config` differs from the writing process's config, and with
    /// [`CheckpointError::Corrupted`] when the rebuild detects an
    /// inconsistency the structural validation could not (vocabulary
    /// missing from the persisted interner).
    pub fn restore<'a>(
        &self,
        kb: &'a KnowledgeBase,
        models: TrainedModels,
        config: PipelineConfig,
    ) -> Result<IncrementalPipeline<'a>, CheckpointError> {
        self.verify_config(&config)?;

        let corpus = Corpus::from_tables(self.tables.clone());
        let mapping = CorpusMapping::from_tables(self.mappings.clone());
        let all_tables: Vec<TableId> = corpus.tables().iter().map(|t| t.id).collect();

        let mut states = Vec::with_capacity(CLASS_KEYS.len());
        for (&class, dump) in CLASS_KEYS.iter().zip(&self.classes) {
            // Re-minting the class's arena in stored order reproduces every
            // Sym id of that class; all interning below is re-interning of
            // already-present strings, asserted by the per-class baseline
            // check at the end of the loop body.
            let mut interner = Interner::new();
            for s in &dump.interner {
                interner.intern(s);
            }
            let baseline = interner.len();

            let kb_index = kb.label_index(class);
            let rows = class_rows_in_arrival_order(&corpus, &mapping, class);
            let contexts = build_row_contexts(&corpus, &mapping, &rows, &mut interner);

            // Replay the frozen PHI vectors per table, in arrival order —
            // the same per-table label sequences ingest fed to add_table.
            let mut phi = StreamingPhi::new();
            for table in corpus.tables() {
                if mapping.table(table.id).map(|tm| tm.class) != Some(Some(class)) {
                    continue;
                }
                let labels: Vec<String> = contexts
                    .iter()
                    .filter(|c| c.row.table == table.id)
                    .filter(|c| !c.normalized_label.is_empty())
                    .map(|c| c.normalized_label.clone())
                    .collect();
                phi.add_table(table.id, &labels);
            }

            let clusterer = StreamingClusterer::from_parts(
                config.clustering.clone(),
                contexts,
                dump.clusters.clone(),
            );
            let implicit = ImplicitAttributes::build(&corpus, &mapping, kb, class, &kb_index);
            let kbt = if config.fusion.scoring == ScoringMethod::Kbt {
                kbt_scores_for_tables(&corpus, &mapping, kb, class, &all_tables)
            } else {
                std::collections::HashMap::new()
            };
            if interner.len() != baseline {
                return Err(CheckpointError::Corrupted(format!(
                    "{class}: state rebuild minted {} new interned strings — the checkpointed \
                     interner does not cover the class's corpus vocabulary",
                    interner.len() - baseline
                )));
            }
            states.push(ClassState {
                class,
                interner,
                kb_index,
                clusterer,
                phi,
                implicit,
                kbt,
                entities: dump.entities.clone(),
                results: dump.results.clone(),
            });
        }

        Ok(IncrementalPipeline { kb, models, config, corpus, mapping, states })
    }

    /// Write the checkpoint to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        std::fs::write(path, self.encode())?;
        Ok(())
    }

    /// Read and decode a checkpoint file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        Self::decode(&std::fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_codec_round_trips_every_variant_bit_exactly() {
        let values = vec![
            Value::Text("héllo world".into()),
            Value::Nominal("US-07302".into()),
            Value::InstanceRef("New England Patriots".into()),
            Value::Date(Date::year(-44)),
            Value::Date(Date::day(1969, 7, 20)),
            Value::Quantity(-0.0),
            Value::Quantity(f64::NAN),
            Value::NominalInt(-12),
        ];
        let mut w = ByteWriter::new();
        for v in &values {
            encode_value_into(v, &mut w);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        for v in &values {
            let decoded = decode_value_from(&mut r).unwrap();
            match (v, &decoded) {
                (Value::Quantity(a), Value::Quantity(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                _ => assert_eq!(*v, decoded),
            }
        }
        r.expect_eof().unwrap();
    }

    #[test]
    fn invalid_value_and_type_tags_are_rejected() {
        let mut r = ByteReader::new(&[9]);
        assert!(matches!(
            decode_value_from(&mut r),
            Err(CodecError::InvalidTag { what: "value", tag: 9 })
        ));
        assert!(data_type_from_tag(6).is_err());
        assert!(detected_type_from_tag(3).is_err());
        assert!(class_key_from_code(250).is_err());
    }

    #[test]
    fn corpus_codec_round_trips_and_rejects_duplicates() {
        let table = WebTable {
            id: TableId(7),
            columns: vec![Column {
                header: "song".into(),
                cells: vec!["Yellow Submarine".into(), "".into()],
            }],
            truth: TableTruth {
                class: ClassKey::Song,
                label_column: 0,
                column_property: vec![None],
                row_entity: vec![ltee_kb::EntityId(1), ltee_kb::EntityId(2)],
            },
        };
        let corpus = Corpus::from_tables(vec![table.clone()]);
        let decoded = decode_corpus(&encode_corpus(&corpus)).unwrap();
        assert_eq!(decoded.tables(), corpus.tables());

        let doubled = Corpus::from_tables(vec![table.clone(), table]);
        // from_tables collapses the id lookup, but the encoded stream still
        // carries both tables — decode must reject it.
        let mut w = ByteWriter::new();
        encode_corpus_into(&doubled, &mut w);
        assert!(matches!(
            decode_corpus(&w.into_bytes()),
            Err(CheckpointError::Corrupted(why)) if why.contains("duplicate table id")
        ));
    }

    #[test]
    fn restore_is_bit_identical_and_ingests_identically_afterwards() {
        use crate::pipeline::train_models;
        use ltee_kb::{generate_world, GeneratorConfig, Scale};
        use ltee_webtables::{generate_corpus, CorpusConfig, GoldStandard};

        let world = generate_world(&GeneratorConfig::new(Scale::tiny(), 58));
        let corpus = generate_corpus(&world, &CorpusConfig::tiny());
        let golds: Vec<GoldStandard> =
            CLASS_KEYS.iter().map(|&c| GoldStandard::build(&world, &corpus, c)).collect();
        let config = PipelineConfig::fast();
        let models = train_models(&corpus, world.kb(), &golds, &config).unwrap();

        let batches = corpus.split_into_batches(3);
        let mut original = IncrementalPipeline::new(world.kb(), models.clone(), config.clone());
        original.ingest(&batches[0]).unwrap();
        original.ingest(&batches[1]).unwrap();

        let checkpoint = original.checkpoint(2);
        let decoded = PipelineCheckpoint::decode(&checkpoint.encode()).unwrap();
        assert_eq!(decoded.applied_batches, 2);
        let mut restored = decoded.restore(world.kb(), models, config.clone()).unwrap();

        assert_eq!(restored.corpus.tables(), original.corpus.tables());
        for (a, b) in original.states.iter().zip(&restored.states) {
            assert_eq!(a.interner.len(), b.interner.len());
            assert_eq!(a.clusterer.clusters(), b.clusterer.clusters());
            assert_eq!(a.entities, b.entities);
            assert_eq!(a.results, b.results);
            assert_eq!(a.phi.table_count(), b.phi.table_count());
        }

        // The decisive check: both pipelines must evolve identically.
        let ra = original.ingest(&batches[2]).unwrap();
        let rb = restored.ingest(&batches[2]).unwrap();
        assert_eq!(ra.touched_classes, rb.touched_classes);
        assert_eq!(ra.new_entities, rb.new_entities);
        for (a, b) in original.states.iter().zip(&restored.states) {
            assert_eq!(a.clusterer.clusters(), b.clusterer.clusters());
            assert_eq!(a.entities, b.entities);
            for (x, y) in a.results.iter().zip(&b.results) {
                assert_eq!(x.entity, y.entity);
                assert_eq!(x.outcome, y.outcome);
                assert_eq!(x.best_score.to_bits(), y.best_score.to_bits());
                assert_eq!(x.candidate_count, y.candidate_count);
            }
        }

        // Config-fingerprint guard.
        let mut other = PipelineConfig::fast();
        other.iterations = config.iterations + 1;
        assert!(matches!(
            decoded.verify_config(&other),
            Err(CheckpointError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn decode_rejects_bad_magic_truncation_and_version() {
        assert!(matches!(PipelineCheckpoint::decode(b"nope"), Err(CheckpointError::BadMagic)));
        let empty = PipelineCheckpoint {
            fingerprint: 1,
            applied_batches: 0,
            tables: vec![],
            mappings: vec![],
            classes: CLASS_KEYS
                .iter()
                .map(|_| ClassDump {
                    interner: vec![],
                    clusters: vec![],
                    entities: vec![],
                    results: vec![],
                })
                .collect(),
        };
        let bytes = empty.encode();
        assert!(PipelineCheckpoint::decode(&bytes).is_ok());
        assert!(matches!(
            PipelineCheckpoint::decode(&bytes[..20]),
            Err(CheckpointError::Decode(_))
        ));
        let mut wrong_version = bytes.clone();
        wrong_version[8] = 99;
        assert!(matches!(
            PipelineCheckpoint::decode(&wrong_version),
            Err(CheckpointError::UnsupportedVersion(99))
        ));
        let mut flipped = bytes;
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert!(matches!(
            PipelineCheckpoint::decode(&flipped),
            Err(CheckpointError::Corrupted(_))
        ));
    }
}
