//! The serve phase: incremental micro-batch ingestion over frozen models.
//!
//! [`IncrementalPipeline`] loads a trained [`crate::ModelArtifact`] once and
//! then ingests micro-batches of new web tables as they arrive, running
//! schema matching, clustering, fusion and new detection **only over the
//! delta** while scoring against all previously ingested state. Nothing is
//! retrained at serve time: matcher weights, the row/entity similarity
//! forests and every learned threshold come from the artifact.
//!
//! ## What is incremental about it
//!
//! * **Schema matching** is per table and runs only on the batch's tables.
//! * **Blocking / clustering** appends the batch's rows to a
//!   [`StreamingClusterer`], which scores each new row against the
//!   accumulated clusters (in parallel) and either joins one or founds a
//!   new one. Previously assigned rows never move.
//! * **PHI statistics** grow via [`StreamingPhi`]: each new table's vector
//!   is frozen at ingest time.
//! * **Implicit attributes** are computed per new table against the frozen
//!   knowledge base and merged into the per-class state.
//! * **Fusion + new detection** re-run only for the clusters the batch
//!   created or extended; untouched clusters keep their entities and
//!   decisions.
//!
//! ## Equivalence contract
//!
//! Every per-row decision depends only on the rows ingested before it and
//! on frozen per-table statistics, never on batch boundaries. Tables are
//! processed in **arrival order** (the order they appear in each batch,
//! batches in ingest order — ids play no role), so ingesting a corpus as K
//! micro-batches yields **bit-identical** clusters, fused entities and
//! new/existing decisions to ingesting the concatenation in one batch —
//! which is exactly what [`crate::Pipeline::run_streaming`] does. The
//! repository test `tests/incremental_equivalence.rs` asserts this end to
//! end at multiple thread counts.
//!
//! ## Class sharding
//!
//! Each class's accumulated state — streaming clusterer, KB label index,
//! implicit attributes, KBT cache **and its own interner** — is fully
//! self-contained, so ingest groups the class states into the shard
//! buckets of [`crate::ShardPlan`] and runs the buckets concurrently on
//! the work-stealing pool: once for matching statistics + delta
//! clustering, once for fusion + new detection. The shard grouping is
//! pure execution placement (shards share nothing mutable), and both
//! fan-outs merge their per-class results back in [`CLASS_KEYS`] order,
//! so every output — including the [`IngestReport`] — is bit-identical
//! at every (shard count × thread count).

use ltee_clustering::{
    build_row_contexts, ImplicitAttributes, StreamingClusterer, StreamingPhi,
};
use ltee_fusion::Entity;
use ltee_index::LabelIndex;
use ltee_intern::Interner;
use ltee_kb::{ClassKey, KnowledgeBase, CLASS_KEYS};
use ltee_matching::{match_corpus, CorpusMapping};
use ltee_newdetect::NewDetectionResult;
use ltee_webtables::Corpus;

use rayon::prelude::*;

use crate::artifact::{ArtifactError, ModelArtifact};
use crate::pipeline::{
    fuse_and_detect, ClassOutput, PipelineConfig, PipelineError, PipelineOutput, TrainedModels,
};
use crate::shard::ShardPlan;

/// The rows of a batch's tables mapped to `class`, in the batch's **storage
/// order** (arrival order), not sorted by table id.
///
/// `CorpusMapping::class_rows` sorts by table id, which is fine for the
/// batch pipeline but would make the serve path's results depend on the id
/// scheme: a stream whose table ids are not monotonically increasing would
/// cluster in a different order than the same tables ingested in one batch.
/// Processing in arrival order makes the equivalence contract hold for any
/// ids — K micro-batches are bit-identical to one pass over the
/// concatenated corpus *in the same table order*.
pub(crate) fn class_rows_in_arrival_order(
    batch: &Corpus,
    mapping: &CorpusMapping,
    class: ClassKey,
) -> Vec<ltee_webtables::RowRef> {
    let mut rows = Vec::new();
    for table in batch.tables() {
        let Some(tm) = mapping.table(table.id) else { continue };
        if tm.class == Some(class) {
            rows.extend(table.row_refs());
        }
    }
    rows
}

/// Per-class accumulated serve state.
///
/// Self-contained by construction — every field (the interner included) is
/// touched only by this class's processing — which is what lets shard
/// buckets of states ingest concurrently without sharing anything mutable.
#[derive(Debug, Clone)]
pub(crate) struct ClassState {
    pub(crate) class: ClassKey,
    /// The class's interner: every label/token this class's stream mints
    /// is interned once, in arrival order, and all similarity scoring
    /// compares integers. Per-class (rather than one arena per pipeline)
    /// so shards never contend on a shared arena; no scoring path depends
    /// on raw `Sym` ordering across classes, so the split changes no
    /// output. Syms are never persisted — checkpoints store the strings in
    /// mint order and a restoring process re-interns from scratch.
    pub(crate) interner: Interner,
    /// Label index over the knowledge base instances of the class, built
    /// once at load time (the KB is frozen during serving).
    pub(crate) kb_index: LabelIndex,
    pub(crate) clusterer: StreamingClusterer,
    pub(crate) phi: StreamingPhi,
    pub(crate) implicit: ImplicitAttributes,
    /// Accumulated per-column KBT scores (only populated under
    /// [`ltee_fusion::ScoringMethod::Kbt`] scoring), extended per batch so
    /// fusion never rescans the whole corpus.
    pub(crate) kbt: std::collections::HashMap<(ltee_webtables::TableId, usize), f64>,
    /// One fused entity per cluster (parallel to the clusterer's clusters).
    pub(crate) entities: Vec<Entity>,
    /// One detection result per cluster; `entity` is the cluster index.
    pub(crate) results: Vec<NewDetectionResult>,
}

/// Summary of one [`IncrementalPipeline::ingest`] call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Tables in the batch.
    pub tables: usize,
    /// Raw rows in the batch.
    pub rows: usize,
    /// Rows the schema matcher mapped to one of the target classes.
    pub mapped_rows: usize,
    /// Clusters created by this batch.
    pub new_clusters: usize,
    /// Pre-existing clusters extended by this batch.
    pub updated_clusters: usize,
    /// Entities currently classified as new that this batch created or
    /// re-classified.
    pub new_entities: usize,
    /// The classes whose clusters (and therefore entities/results) this
    /// batch created or changed, in [`CLASS_KEYS`] order. Snapshot
    /// publishers use this to rebuild only the class projections a batch
    /// actually touched and share the rest with the previous version.
    pub touched_classes: Vec<ClassKey>,
}

/// A serving pipeline: frozen trained models plus accumulated stream state.
///
/// See the [module docs](self) for the processing model and the equivalence
/// contract. Construct it from freshly trained models
/// ([`IncrementalPipeline::new`]) or from a persisted artifact
/// ([`IncrementalPipeline::from_artifact`]), then feed micro-batches to
/// [`IncrementalPipeline::ingest`] and read the cumulative result from
/// [`IncrementalPipeline::output`] at any point.
#[derive(Debug, Clone)]
pub struct IncrementalPipeline<'a> {
    pub(crate) kb: &'a KnowledgeBase,
    pub(crate) models: TrainedModels,
    pub(crate) config: PipelineConfig,
    /// All ingested tables.
    pub(crate) corpus: Corpus,
    /// Accumulated schema mapping of all ingested tables.
    pub(crate) mapping: CorpusMapping,
    /// Per-class accumulated state, in [`CLASS_KEYS`] order. Each state
    /// owns its own interner (see [`ClassState::interner`]), so shard
    /// buckets of states can ingest concurrently.
    pub(crate) states: Vec<ClassState>,
}

impl<'a> IncrementalPipeline<'a> {
    /// Create a serving pipeline over a knowledge base with trained models.
    pub fn new(kb: &'a KnowledgeBase, models: TrainedModels, config: PipelineConfig) -> Self {
        let states = CLASS_KEYS
            .iter()
            .map(|&class| ClassState {
                class,
                interner: Interner::new(),
                kb_index: kb.label_index(class),
                clusterer: StreamingClusterer::new(config.clustering.clone()),
                phi: StreamingPhi::new(),
                implicit: ImplicitAttributes::default(),
                kbt: std::collections::HashMap::new(),
                entities: Vec::new(),
                results: Vec::new(),
            })
            .collect();
        Self { kb, models, config, corpus: Corpus::new(), mapping: CorpusMapping::default(), states }
    }

    /// Create a serving pipeline from a persisted artifact, verifying that
    /// the artifact was trained under (the inference-relevant parts of)
    /// `config` — see [`crate::artifact::config_fingerprint`].
    pub fn from_artifact(
        kb: &'a KnowledgeBase,
        artifact: &ModelArtifact,
        config: PipelineConfig,
    ) -> Result<Self, ArtifactError> {
        artifact.verify_config(&config)?;
        Ok(Self::new(kb, artifact.models.clone(), config))
    }

    /// The trained models being served.
    pub fn models(&self) -> &TrainedModels {
        &self.models
    }

    /// Number of tables ingested so far.
    pub fn ingested_tables(&self) -> usize {
        self.corpus.len()
    }

    /// Number of raw rows ingested so far.
    pub fn ingested_rows(&self) -> usize {
        self.corpus.total_rows()
    }

    /// The accumulated entities and detection results of one class, parallel
    /// vectors with one slot per cluster (`results[i].entity == i`).
    /// Returns `None` while the class has no clusters. This is the
    /// per-class projection surface snapshot publishers read after an
    /// ingest — borrowing, not cloning, so publication cost is driven by
    /// the projection the publisher builds, not by this accessor.
    pub fn class_entities(
        &self,
        class: ClassKey,
    ) -> Option<(&[Entity], &[NewDetectionResult])> {
        self.states
            .iter()
            .find(|s| s.class == class && !s.clusterer.is_empty())
            .map(|s| (s.entities.as_slice(), s.results.as_slice()))
    }

    /// Ingest one micro-batch of new tables.
    ///
    /// An empty batch is a no-op and returns a zeroed report. A batch that
    /// re-uses an already ingested table id is rejected with
    /// [`PipelineError::DuplicateTable`] before any state changes.
    pub fn ingest(&mut self, batch: &Corpus) -> Result<IngestReport, PipelineError> {
        if batch.is_empty() {
            return Ok(IngestReport::default());
        }
        let mut batch_ids = std::collections::HashSet::new();
        for table in batch.tables() {
            // Reject ids already ingested AND ids duplicated within the
            // batch itself — either would corrupt the accumulated corpus
            // lookup and double-count the PHI statistics.
            if self.corpus.table(table.id).is_some() || !batch_ids.insert(table.id) {
                return Err(PipelineError::DuplicateTable(table.id));
            }
        }
        self.config.parallelism.install();
        let num_shards = self.config.shards.resolve();
        let num_states = self.states.len();

        let mut report = IngestReport {
            tables: batch.len(),
            rows: batch.total_rows(),
            ..IngestReport::default()
        };

        // Schema matching over the delta only. The serve profile runs the
        // first-iteration matchers: the duplicate-based and corpus-level
        // matchers need full-corpus feedback, which is a batch-mode
        // (training/evaluation) feature.
        let batch_mapping =
            match_corpus(batch, self.kb, &self.models.matcher_weights, &self.config.schema, None);

        // Phase 1 — per-class matching statistics + delta clustering,
        // shard-concurrent. Each class state (its interner included) is
        // self-contained, so the buckets touch disjoint mutable state and
        // the grouping is pure execution placement.
        let kb = self.kb;
        let models = &self.models;
        let config = &self.config;
        let phase1: Vec<Vec<(usize, ClassDelta)>> =
            shard_buckets(&mut self.states, num_shards, |_| true)
                .into_par_iter()
                .map(|bucket| {
                    bucket
                        .into_iter()
                        .map(|(idx, state)| {
                            (
                                idx,
                                ingest_class_delta(state, batch, &batch_mapping, kb, models, config),
                            )
                        })
                        .collect()
                })
                .collect();

        // Deterministic merge: fold the per-class deltas into the report in
        // state ([`CLASS_KEYS`]) order, independent of which shard produced
        // them (the counters are sums either way; the order rule keeps the
        // merge contract uniform with `touched_classes` below).
        let mut touched_per_state: Vec<Vec<usize>> = vec![Vec::new(); num_states];
        let mut ordered: Vec<Option<ClassDelta>> = (0..num_states).map(|_| None).collect();
        for (idx, delta) in phase1.into_iter().flatten() {
            ordered[idx] = Some(delta);
        }
        for (idx, delta) in ordered.into_iter().enumerate() {
            let Some(delta) = delta else { continue };
            report.mapped_rows += delta.mapped_rows;
            report.new_clusters += delta.new_clusters;
            report.updated_clusters += delta.updated_clusters;
            touched_per_state[idx] = delta.touched;
        }

        // The accumulated corpus and mapping must include the batch before
        // fusion (fused facts and entity bags read any of a cluster's rows,
        // including the ones just added).
        for table in batch.tables() {
            self.corpus.push(table.clone());
        }
        self.mapping.merge(batch_mapping);

        // Phase 2 — re-fuse and re-classify only the touched clusters,
        // again shard-concurrent over disjoint class states (fusion reads
        // the shared corpus/mapping immutably and writes only its own
        // state's entities/results/interner).
        let corpus = &self.corpus;
        let mapping = &self.mapping;
        let touched_ref = &touched_per_state;
        let phase2: Vec<Vec<(usize, usize)>> =
            shard_buckets(&mut self.states, num_shards, |idx| !touched_ref[idx].is_empty())
                .into_par_iter()
                .map(|bucket| {
                    bucket
                        .into_iter()
                        .map(|(idx, state)| {
                            let new_entities = refresh_touched_clusters(
                                state,
                                &touched_ref[idx],
                                corpus,
                                mapping,
                                kb,
                                models,
                                config,
                            );
                            (idx, new_entities)
                        })
                        .collect()
                })
                .collect();

        // Merge in state order again: `touched_classes` and the
        // new-entities counter come out identical at every shard count.
        let mut new_per_state: Vec<Option<usize>> = vec![None; num_states];
        for (idx, new_entities) in phase2.into_iter().flatten() {
            new_per_state[idx] = Some(new_entities);
        }
        for (state, new_entities) in self.states.iter().zip(new_per_state) {
            if let Some(new_entities) = new_entities {
                report.touched_classes.push(state.class);
                report.new_entities += new_entities;
            }
        }

        Ok(report)
    }

    /// The number of shard buckets the next ingest would use (resolved from
    /// the config's [`ShardPlan`] right now).
    pub fn shard_count(&self) -> usize {
        self.config.shards.resolve()
    }

    /// Snapshot of the cumulative pipeline output over everything ingested
    /// so far. The shape matches [`crate::Pipeline::run`]'s output: one
    /// [`ClassOutput`] per class with rows, parallel entity and result
    /// vectors, plus the accumulated schema mapping.
    pub fn output(&self) -> PipelineOutput {
        let classes = self
            .states
            .iter()
            .filter(|s| !s.clusterer.is_empty())
            .map(|s| ClassOutput {
                class: s.class,
                clusters: s.clusterer.all_row_refs(),
                entities: s.entities.clone(),
                results: s.results.clone(),
            })
            .collect();
        PipelineOutput { mapping: self.mapping.clone(), classes }
    }
}

/// What phase 1 of an ingest produced for one class; folded into the
/// [`IngestReport`] in state order after the shard fan-out joins.
struct ClassDelta {
    mapped_rows: usize,
    new_clusters: usize,
    updated_clusters: usize,
    /// Cluster indexes the batch created or extended.
    touched: Vec<usize>,
}

/// Group mutable references to the class states into `num_shards` disjoint
/// shard buckets ([`ShardPlan::shard_of`]), tagging each state with its
/// index so the caller can merge results back in state order. States for
/// which `keep` returns `false` stay out of every bucket.
fn shard_buckets<'s>(
    states: &'s mut [ClassState],
    num_shards: usize,
    keep: impl Fn(usize) -> bool,
) -> Vec<Vec<(usize, &'s mut ClassState)>> {
    let mut buckets: Vec<Vec<(usize, &'s mut ClassState)>> =
        (0..num_shards.max(1)).map(|_| Vec::new()).collect();
    for (idx, state) in states.iter_mut().enumerate() {
        if keep(idx) {
            buckets[ShardPlan::shard_of(state.class, num_shards)].push((idx, state));
        }
    }
    buckets
}

/// Phase 1 for one class: corpus statistics for the delta (per-table
/// implicit attributes, KBT scores and frozen PHI vectors — all functions
/// of the table and the frozen KB alone, so batch-invariant), then delta
/// clustering against all accumulated state. Mutates only `state`.
fn ingest_class_delta(
    state: &mut ClassState,
    batch: &Corpus,
    batch_mapping: &CorpusMapping,
    kb: &KnowledgeBase,
    models: &TrainedModels,
    config: &PipelineConfig,
) -> ClassDelta {
    let class = state.class;
    let rows = class_rows_in_arrival_order(batch, batch_mapping, class);
    if rows.is_empty() {
        return ClassDelta {
            mapped_rows: 0,
            new_clusters: 0,
            updated_clusters: 0,
            touched: Vec::new(),
        };
    }

    let contexts = build_row_contexts(batch, batch_mapping, &rows, &mut state.interner);
    let implicit_delta =
        ImplicitAttributes::build(batch, batch_mapping, kb, class, &state.kb_index);
    state.implicit.merge(implicit_delta);
    if config.fusion.scoring == ltee_fusion::ScoringMethod::Kbt {
        let batch_tables: Vec<_> = batch.tables().iter().map(|t| t.id).collect();
        state.kbt.extend(ltee_fusion::kbt_scores_for_tables(
            batch,
            batch_mapping,
            kb,
            class,
            &batch_tables,
        ));
    }
    // Freeze PHI vectors table by table, in arrival order (the same order
    // the rows cluster in).
    for table in batch.tables() {
        if batch_mapping.table(table.id).map(|tm| tm.class) != Some(Some(class)) {
            continue;
        }
        let labels: Vec<String> = contexts
            .iter()
            .filter(|c| c.row.table == table.id)
            .filter(|c| !c.normalized_label.is_empty())
            .map(|c| c.normalized_label.clone())
            .collect();
        state.phi.add_table(table.id, &labels);
    }

    // Delta clustering against all accumulated state.
    let touched = state.clusterer.ingest(
        contexts,
        &models.row_model,
        state.phi.vectors(),
        &state.implicit,
        &state.interner,
    );
    let previously_known = state.entities.len();
    let new_clusters = touched.iter().filter(|&&c| c >= previously_known).count();
    let updated_clusters = touched.iter().filter(|&&c| c < previously_known).count();

    if state.entities.len() < state.clusterer.len() {
        // Placeholders keep `entities`/`results` parallel to the cluster
        // list until phase 2 overwrites them.
        state.entities.resize_with(state.clusterer.len(), || Entity {
            class,
            rows: Vec::new(),
            labels: Vec::new(),
            facts: Vec::new(),
        });
        state.results.resize_with(state.clusterer.len(), || NewDetectionResult {
            entity: 0,
            outcome: ltee_newdetect::NewDetectionOutcome::New,
            best_score: 0.0,
            candidate_count: 0,
        });
    }

    ClassDelta { mapped_rows: rows.len(), new_clusters, updated_clusters, touched }
}

/// Phase 2 for one class: fuse and re-classify the clusters the batch
/// touched, writing the refreshed entities/results into their slots.
/// Returns how many touched clusters now classify as new. Reads the
/// accumulated corpus/mapping immutably; mutates only `state`.
#[allow(clippy::too_many_arguments)]
fn refresh_touched_clusters(
    state: &mut ClassState,
    touched: &[usize],
    corpus: &Corpus,
    mapping: &CorpusMapping,
    kb: &KnowledgeBase,
    models: &TrainedModels,
    config: &PipelineConfig,
) -> usize {
    let class = state.class;
    let touched_clusters: Vec<Vec<ltee_webtables::RowRef>> =
        touched.iter().map(|&c| state.clusterer.cluster_row_refs(c)).collect();
    let (entities, results) = fuse_and_detect(
        &touched_clusters,
        corpus,
        mapping,
        kb,
        class,
        &state.implicit,
        &state.kb_index,
        models,
        config,
        Some(&state.kbt),
        &mut state.interner,
    );
    let mut new_entities = 0;
    for ((cluster_idx, entity), mut result) in touched.iter().copied().zip(entities).zip(results) {
        result.entity = cluster_idx;
        if result.outcome.is_new() {
            new_entities += 1;
        }
        state.entities[cluster_idx] = entity;
        state.results[cluster_idx] = result;
    }
    new_entities
}
