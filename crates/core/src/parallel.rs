//! Thread-count control for pipeline runs.
//!
//! Every hot path in the workspace executes on the vendored rayon shim's
//! work-stealing pool, whose determinism contract guarantees bit-identical
//! results at every thread count (fixed chunking, ordered collection,
//! chunk-wise reductions). [`Parallelism`] lets experiments, examples,
//! benches and tests pin the thread count programmatically instead of via
//! the `LTEE_NUM_THREADS` / `RAYON_NUM_THREADS` environment variables.

use serde::{Deserialize, Serialize};

/// How many worker threads the pipeline's parallel stages use.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Parallelism {
    /// Resolve from the environment: `LTEE_NUM_THREADS`, then
    /// `RAYON_NUM_THREADS`, then the machine's available parallelism.
    #[default]
    Auto,
    /// Run every parallel stage inline on the calling thread (equivalent to
    /// `Threads(1)`; results are identical to any other setting).
    Sequential,
    /// Pin the pool to exactly this many worker threads (minimum 1).
    Threads(usize),
}

impl Parallelism {
    /// The pinned thread count, or `None` for environment resolution.
    pub fn thread_count(self) -> Option<usize> {
        match self {
            Parallelism::Auto => None,
            Parallelism::Sequential => Some(1),
            Parallelism::Threads(n) => Some(n.max(1)),
        }
    }

    /// Install this setting as the process-global thread count. `Auto`
    /// clears any previous pin so the environment resolution applies again.
    ///
    /// With the vendored shim this always succeeds and may be called
    /// repeatedly (e.g. once per pipeline run); with registry rayon the
    /// underlying `build_global` only takes effect before the global pool's
    /// first use, so pin the count once at startup there.
    pub fn install(self) {
        let builder = rayon::ThreadPoolBuilder::new().num_threads(self.thread_count().unwrap_or(0));
        let _ = builder.build_global();
    }

    /// The number of threads parallel stages would use right now if this
    /// setting were installed.
    pub fn resolve(self) -> usize {
        self.thread_count().unwrap_or_else(rayon::current_num_threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_counts_resolve() {
        assert_eq!(Parallelism::Auto.thread_count(), None);
        assert_eq!(Parallelism::Sequential.thread_count(), Some(1));
        assert_eq!(Parallelism::Threads(4).thread_count(), Some(4));
        // Zero threads makes no sense; clamp to one.
        assert_eq!(Parallelism::Threads(0).thread_count(), Some(1));
        assert!(Parallelism::Sequential.resolve() >= 1);
    }

    #[test]
    fn install_paths_are_exercisable() {
        // The process-global override is shared with every other test in
        // this binary (train_models/Pipeline::run install it too), so only
        // exercise both install paths here without asserting on the global —
        // the pin/unpin behaviour itself is asserted under a lock in
        // vendor/rayon/tests/pool.rs, and results are thread-count
        // independent by the determinism contract anyway.
        Parallelism::Threads(3).install();
        Parallelism::Auto.install();
        assert!(Parallelism::Auto.resolve() >= 1);
    }
}
