//! The two-iteration LTEE pipeline.

use std::collections::HashMap;

use ltee_clustering::{
    build_pair_dataset, build_row_contexts, cluster_rows, train_row_model, ClusteringConfig,
    ImplicitAttributes, RowMetricKind, RowModelTrainingConfig, RowSimilarityModel,
};
use ltee_clustering::metrics::PhiTableVectors;
use ltee_fusion::{create_entities, Entity, EntityCreationConfig};
use ltee_intern::Interner;
use ltee_kb::{ClassKey, KnowledgeBase, CLASS_KEYS};
use ltee_matching::{
    learn_weights, match_corpus, CorpusFeedback, CorpusMapping, MatcherWeights, SchemaMatchingConfig,
};
use ltee_ml::GeneticConfig;
use ltee_newdetect::{
    build_entity_pair_dataset, detect_new, train_entity_model, EntityMetricKind,
    EntityModelTrainingConfig, EntitySimilarityModel, NewDetectionConfig, NewDetectionOutcome,
    NewDetectionResult,
};
use ltee_newdetect::metrics::EntityContext;
use ltee_webtables::{Corpus, GoldStandard, RowRef, TableId};

use crate::parallel::Parallelism;
use crate::shard::ShardPlan;

/// Typed errors of pipeline training and execution.
///
/// The pipeline used to panic on degenerate inputs (empty corpora, empty
/// gold standards, training sets without a single pair); callers now get a
/// typed error they can handle — a serving process must not die because one
/// request carried an empty batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The corpus holds no tables, so there is nothing to run on.
    EmptyCorpus,
    /// No gold standards were supplied to training.
    NoGoldStandards,
    /// A training stage produced an empty dataset (e.g. the schema matcher
    /// mapped no rows for any gold class, so no row pairs exist).
    EmptyTrainingData {
        /// Which training stage ran dry.
        stage: &'static str,
    },
    /// A micro-batch re-used the id of an already ingested table.
    DuplicateTable(TableId),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::EmptyCorpus => write!(f, "the corpus contains no tables"),
            PipelineError::NoGoldStandards => {
                write!(f, "at least one gold standard is required for training")
            }
            PipelineError::EmptyTrainingData { stage } => {
                write!(f, "training stage '{stage}' produced an empty dataset")
            }
            PipelineError::DuplicateTable(id) => {
                write!(f, "table {} was already ingested", id.raw())
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// Configuration of the full pipeline.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Number of pipeline iterations (the paper uses two; Table 6 shows a
    /// third adds almost nothing).
    pub iterations: usize,
    /// Schema matching configuration.
    pub schema: SchemaMatchingConfig,
    /// Clustering algorithm configuration.
    pub clustering: ClusteringConfig,
    /// Row similarity metrics used by the clustering.
    pub row_metrics: Vec<RowMetricKind>,
    /// Entity-to-instance metrics used by new detection.
    pub entity_metrics: Vec<EntityMetricKind>,
    /// Row model training configuration.
    pub row_training: RowModelTrainingConfig,
    /// Entity model training configuration.
    pub entity_training: EntityModelTrainingConfig,
    /// Entity creation (fusion) configuration.
    pub fusion: EntityCreationConfig,
    /// New detection configuration.
    pub newdetect: NewDetectionConfig,
    /// Genetic algorithm settings for learning matcher weights.
    pub matcher_genetic: GeneticConfig,
    /// Thread count for every parallel stage (training and inference).
    /// Results are bit-identical at every setting; see [`Parallelism`].
    pub parallelism: Parallelism,
    /// How the serve path's per-class states are grouped into
    /// concurrently-ingesting shards. Pure execution placement — results
    /// are bit-identical at every setting, and (like `parallelism`) it is
    /// excluded from the config fingerprint, so artifacts and checkpoints
    /// are portable across shard counts. See [`ShardPlan`].
    pub shards: ShardPlan,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            iterations: 2,
            schema: SchemaMatchingConfig::default(),
            clustering: ClusteringConfig::default(),
            row_metrics: RowMetricKind::ALL.to_vec(),
            entity_metrics: EntityMetricKind::ALL.to_vec(),
            row_training: RowModelTrainingConfig::default(),
            entity_training: EntityModelTrainingConfig::default(),
            fusion: EntityCreationConfig::default(),
            newdetect: NewDetectionConfig::default(),
            matcher_genetic: GeneticConfig::default(),
            parallelism: Parallelism::Auto,
            shards: ShardPlan::Auto,
        }
    }
}

impl PipelineConfig {
    /// Faster settings (smaller learners) for tests and benches.
    pub fn fast() -> Self {
        Self {
            row_training: RowModelTrainingConfig::fast(),
            entity_training: EntityModelTrainingConfig::fast(),
            matcher_genetic: GeneticConfig { population: 20, generations: 15, ..Default::default() },
            ..Default::default()
        }
    }
}

/// The learned models the pipeline needs: matcher weights, the row
/// similarity model and the entity similarity model.
#[derive(Debug, Clone)]
pub struct TrainedModels {
    /// Attribute-to-property matcher weights and thresholds.
    pub matcher_weights: MatcherWeights,
    /// Row similarity model for clustering.
    pub row_model: RowSimilarityModel,
    /// Entity-to-instance similarity model for new detection.
    pub entity_model: EntitySimilarityModel,
}

/// Train all models from gold standards (typically the learning folds).
///
/// This is the **train phase** of the train-once / serve-many split: the
/// returned [`TrainedModels`] can be wrapped into a persistent
/// [`crate::ModelArtifact`] and later served without retraining by a
/// [`crate::Pipeline`] or [`crate::IncrementalPipeline`].
pub fn train_models(
    corpus: &Corpus,
    kb: &KnowledgeBase,
    golds: &[GoldStandard],
    config: &PipelineConfig,
) -> Result<TrainedModels, PipelineError> {
    if corpus.is_empty() {
        return Err(PipelineError::EmptyCorpus);
    }
    if golds.is_empty() {
        return Err(PipelineError::NoGoldStandards);
    }
    config.parallelism.install();
    // One interner per training run: every normalised label / token is
    // interned once, and all similarity kernels compare integers.
    let mut interner = Interner::new();
    let gold_refs: Vec<&GoldStandard> = golds.iter().collect();
    // Matcher weights from the gold attribute annotations (first iteration:
    // no feedback available).
    let matcher_weights = learn_weights(corpus, kb, &gold_refs, None, &config.matcher_genetic);

    // A first-iteration mapping to derive row features for training.
    let mapping = match_corpus(corpus, kb, &matcher_weights, &config.schema, None);

    // Row similarity model: pool pair datasets over all classes.
    let mut row_dataset: Option<ltee_ml::Dataset> = None;
    for gold in golds {
        let rows = mapping.class_rows(corpus, gold.class);
        let contexts = build_row_contexts(corpus, &mapping, &rows, &mut interner);
        let phi = PhiTableVectors::build(corpus, &contexts);
        let index = kb.label_index(gold.class);
        let implicit = ImplicitAttributes::build(corpus, &mapping, kb, gold.class, &index);
        let ds = build_pair_dataset(
            &contexts,
            gold,
            &config.row_metrics,
            &phi,
            &implicit,
            &config.row_training,
            &interner,
        );
        row_dataset = Some(match row_dataset {
            None => ds,
            Some(mut acc) => {
                for s in ds.samples {
                    acc.push(s);
                }
                acc
            }
        });
    }
    let row_dataset = row_dataset.expect("golds is non-empty (checked above)");
    if row_dataset.is_empty() {
        return Err(PipelineError::EmptyTrainingData { stage: "row pair dataset" });
    }
    let row_model = train_row_model(&row_dataset, config.row_metrics.clone(), &config.row_training);

    // Entity similarity model: entities fused from the gold clusters, paired
    // with knowledge base candidates.
    let mut entity_dataset: Option<ltee_ml::Dataset> = None;
    for gold in golds {
        let index = kb.label_index(gold.class);
        let implicit = ImplicitAttributes::build(corpus, &mapping, kb, gold.class, &index);
        let clusters: Vec<Vec<RowRef>> = gold.clusters.iter().map(|c| c.rows.clone()).collect();
        let entities = create_entities(&clusters, corpus, &mapping, kb, gold.class, &config.fusion);
        let contexts: Vec<EntityContext> = entities
            .into_iter()
            .map(|e| EntityContext::build(e, corpus, &implicit, &mut interner))
            .collect();
        let truth: Vec<Option<ltee_kb::InstanceId>> =
            gold.clusters.iter().map(|c| c.kb_instance).collect();
        let ds = build_entity_pair_dataset(
            &contexts,
            &truth,
            kb,
            &index,
            &config.entity_metrics,
            &config.entity_training,
            &mut interner,
        );
        entity_dataset = Some(match entity_dataset {
            None => ds,
            Some(mut acc) => {
                for s in ds.samples {
                    acc.push(s);
                }
                acc
            }
        });
    }
    let entity_dataset = entity_dataset.expect("golds is non-empty (checked above)");
    if entity_dataset.is_empty() {
        return Err(PipelineError::EmptyTrainingData { stage: "entity pair dataset" });
    }
    let entity_model =
        train_entity_model(&entity_dataset, config.entity_metrics.clone(), &config.entity_training);

    Ok(TrainedModels { matcher_weights, row_model, entity_model })
}

/// Output of the pipeline for one class.
#[derive(Debug, Clone)]
pub struct ClassOutput {
    /// The class.
    pub class: ClassKey,
    /// The row clusters produced by the final iteration.
    pub clusters: Vec<Vec<RowRef>>,
    /// The entities created from those clusters (parallel to `clusters`).
    pub entities: Vec<Entity>,
    /// New detection results (parallel to `entities`).
    pub results: Vec<NewDetectionResult>,
}

impl ClassOutput {
    /// Outcomes parallel to `entities`.
    pub fn outcomes(&self) -> Vec<NewDetectionOutcome> {
        self.results.iter().map(|r| r.outcome).collect()
    }

    /// The entities classified as new.
    pub fn new_entities(&self) -> Vec<&Entity> {
        self.results
            .iter()
            .filter(|r| r.outcome.is_new())
            .map(|r| &self.entities[r.entity])
            .collect()
    }

    /// The entities matched to existing instances, with the instance ids.
    pub fn existing_entities(&self) -> Vec<(&Entity, ltee_kb::InstanceId)> {
        self.results
            .iter()
            .filter_map(|r| r.outcome.instance().map(|id| (&self.entities[r.entity], id)))
            .collect()
    }
}

/// Full pipeline output: the final schema mapping plus per-class outputs.
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// The schema mapping of the final iteration.
    pub mapping: CorpusMapping,
    /// Per-class outputs.
    pub classes: Vec<ClassOutput>,
}

impl PipelineOutput {
    /// The output for one class, if the corpus contained tables of it.
    pub fn class(&self, class: ClassKey) -> Option<&ClassOutput> {
        self.classes.iter().find(|c| c.class == class)
    }
}

/// The LTEE pipeline.
#[derive(Debug, Clone)]
pub struct Pipeline<'a> {
    kb: &'a KnowledgeBase,
    models: TrainedModels,
    config: PipelineConfig,
}

impl<'a> Pipeline<'a> {
    /// Create a pipeline over a knowledge base with trained models.
    pub fn new(kb: &'a KnowledgeBase, models: TrainedModels, config: PipelineConfig) -> Self {
        Self { kb, models, config }
    }

    /// The trained models (e.g. to inspect metric importances).
    pub fn models(&self) -> &TrainedModels {
        &self.models
    }

    /// Run the two-iteration batch pipeline over a corpus.
    ///
    /// Returns [`PipelineError::EmptyCorpus`] instead of panicking when the
    /// corpus holds no tables.
    pub fn run(&self, corpus: &Corpus) -> Result<PipelineOutput, PipelineError> {
        if corpus.is_empty() {
            return Err(PipelineError::EmptyCorpus);
        }
        self.config.parallelism.install();
        // One interner per run, shared by every class and iteration: labels
        // and tokens are interned exactly once (sequentially, in row order)
        // and every scoring stage compares integers.
        let mut interner = Interner::new();
        let mut feedback: Option<CorpusFeedback> = None;
        let mut final_output: Option<PipelineOutput> = None;

        for _iteration in 0..self.config.iterations.max(1) {
            let mapping = match_corpus(
                corpus,
                self.kb,
                &self.models.matcher_weights,
                &self.config.schema,
                feedback.as_ref(),
            );

            let mut classes = Vec::new();
            let mut all_clusters: Vec<Vec<RowRef>> = Vec::new();
            let mut cluster_instance: HashMap<usize, ltee_kb::InstanceId> = HashMap::new();

            for class in CLASS_KEYS {
                let Some(class_output) = run_class_batch(
                    corpus,
                    &mapping,
                    self.kb,
                    class,
                    &self.models,
                    &self.config,
                    &mut interner,
                ) else {
                    continue;
                };

                // Collect feedback for the next iteration.
                for (result, cluster) in class_output.results.iter().zip(class_output.clusters.iter())
                {
                    let global_index = all_clusters.len();
                    all_clusters.push(cluster.clone());
                    if let Some(instance) = result.outcome.instance() {
                        cluster_instance.insert(global_index, instance);
                    }
                }

                classes.push(class_output);
            }

            feedback = Some(CorpusFeedback {
                mapping: mapping.clone(),
                clusters: all_clusters,
                cluster_instance,
            });
            final_output = Some(PipelineOutput { mapping, classes });
        }

        Ok(final_output.expect("at least one iteration runs"))
    }

    /// Run the **streaming (serve-profile)** pipeline over a corpus in one
    /// pass, producing exactly what an [`crate::IncrementalPipeline`] with
    /// the same models and config produces after ingesting the corpus —
    /// however it is split into micro-batches. This is the reference run
    /// the incremental equivalence tests compare against.
    ///
    /// The serve profile differs from [`Pipeline::run`]: a single matching
    /// iteration (cross-batch feedback is a batch-mode feature), prefix
    /// blocking, per-table frozen PHI vectors and no KLj refinement — see
    /// `ltee_clustering::incremental` for the rationale.
    pub fn run_streaming(&self, corpus: &Corpus) -> Result<PipelineOutput, PipelineError> {
        if corpus.is_empty() {
            return Err(PipelineError::EmptyCorpus);
        }
        let mut incremental = crate::incremental::IncrementalPipeline::new(
            self.kb,
            self.models.clone(),
            self.config.clone(),
        );
        incremental.ingest(corpus)?;
        Ok(incremental.output())
    }
}

/// One batch-mode class stage: build row contexts and corpus statistics,
/// cluster, fuse and classify. Returns `None` when the mapping assigns the
/// class no rows. Shared by every iteration of [`Pipeline::run`]; the
/// incremental serve path reuses the fusion/detection half via
/// [`fuse_and_detect`].
pub fn run_class_batch(
    corpus: &Corpus,
    mapping: &CorpusMapping,
    kb: &KnowledgeBase,
    class: ClassKey,
    models: &TrainedModels,
    config: &PipelineConfig,
    interner: &mut Interner,
) -> Option<ClassOutput> {
    let rows = mapping.class_rows(corpus, class);
    if rows.is_empty() {
        return None;
    }
    let contexts = build_row_contexts(corpus, mapping, &rows, interner);
    let phi = PhiTableVectors::build(corpus, &contexts);
    let index = kb.label_index(class);
    let implicit = ImplicitAttributes::build(corpus, mapping, kb, class, &index);

    let clustering = cluster_rows(
        &contexts,
        &models.row_model,
        &phi,
        &implicit,
        &config.clustering,
        interner,
    );
    let clusters = clustering.to_row_refs(&contexts);

    let (entities, results) = fuse_and_detect(
        &clusters, corpus, mapping, kb, class, &implicit, &index, models, config, None, interner,
    );
    Some(ClassOutput { class, clusters, entities, results })
}

/// The fusion + new-detection tail of a class stage: create one entity per
/// cluster and classify each as new or existing. `results[i]` corresponds
/// to `clusters[i]`. Used by the batch path on all clusters of an
/// iteration, and by the incremental serve path on just the clusters a
/// micro-batch touched.
///
/// `kbt` optionally supplies precomputed Knowledge-Based-Trust column
/// scores (see [`ltee_fusion::kbt_scores_for_tables`]); with `None` and
/// [`ltee_fusion::ScoringMethod::Kbt`] scoring, the scores are recomputed
/// over the whole mapping — fine for the batch path, wasteful per
/// micro-batch, which is why the serve path caches them.
#[allow(clippy::too_many_arguments)]
pub fn fuse_and_detect(
    clusters: &[Vec<RowRef>],
    corpus: &Corpus,
    mapping: &CorpusMapping,
    kb: &KnowledgeBase,
    class: ClassKey,
    implicit: &ImplicitAttributes,
    index: &ltee_index::LabelIndex,
    models: &TrainedModels,
    config: &PipelineConfig,
    kbt: Option<&std::collections::HashMap<(ltee_webtables::TableId, usize), f64>>,
    interner: &mut Interner,
) -> (Vec<Entity>, Vec<NewDetectionResult>) {
    let entities = match kbt {
        Some(kbt) => ltee_fusion::create_entities_with_scores(
            clusters,
            corpus,
            mapping,
            kb,
            class,
            &config.fusion,
            Some(kbt),
        ),
        None => create_entities(clusters, corpus, mapping, kb, class, &config.fusion),
    };
    let entity_contexts: Vec<EntityContext> = entities
        .iter()
        .cloned()
        .map(|e| EntityContext::build(e, corpus, implicit, interner))
        .collect();
    let results =
        detect_new(&entity_contexts, kb, index, &models.entity_model, &config.newdetect, interner);
    (entities, results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltee_kb::{generate_world, GeneratorConfig, Scale};
    use ltee_webtables::{generate_corpus, CorpusConfig};

    fn run_tiny() -> (ltee_kb::World, Corpus, Vec<GoldStandard>, PipelineOutput) {
        let world = generate_world(&GeneratorConfig::new(Scale::tiny(), 101));
        let corpus = generate_corpus(&world, &CorpusConfig::tiny());
        let golds: Vec<GoldStandard> =
            CLASS_KEYS.iter().map(|&c| GoldStandard::build(&world, &corpus, c)).collect();
        let config = PipelineConfig::fast();
        let models = train_models(&corpus, world.kb(), &golds, &config).expect("trainable corpus");
        let pipeline = Pipeline::new(world.kb(), models, config);
        let output = pipeline.run(&corpus).expect("non-empty corpus");
        (world, corpus, golds, output)
    }

    #[test]
    fn empty_corpus_is_a_typed_error_not_a_panic() {
        let world = generate_world(&GeneratorConfig::new(Scale::tiny(), 101));
        let corpus = generate_corpus(&world, &CorpusConfig::tiny());
        let golds: Vec<GoldStandard> =
            CLASS_KEYS.iter().map(|&c| GoldStandard::build(&world, &corpus, c)).collect();
        let config = PipelineConfig::fast();

        let empty = Corpus::new();
        assert_eq!(
            train_models(&empty, world.kb(), &golds, &config).unwrap_err(),
            PipelineError::EmptyCorpus
        );
        assert_eq!(
            train_models(&corpus, world.kb(), &[], &config).unwrap_err(),
            PipelineError::NoGoldStandards
        );

        let models = train_models(&corpus, world.kb(), &golds, &config).expect("trainable corpus");
        let pipeline = Pipeline::new(world.kb(), models, config);
        assert_eq!(pipeline.run(&empty).unwrap_err(), PipelineError::EmptyCorpus);
        assert_eq!(pipeline.run_streaming(&empty).unwrap_err(), PipelineError::EmptyCorpus);
    }

    #[test]
    fn pipeline_produces_output_for_every_class() {
        let (_, _, _, output) = run_tiny();
        assert_eq!(output.classes.len(), 3);
        for class_output in &output.classes {
            assert!(!class_output.clusters.is_empty());
            assert_eq!(class_output.clusters.len(), class_output.entities.len());
            assert_eq!(class_output.entities.len(), class_output.results.len());
        }
    }

    #[test]
    fn pipeline_finds_new_and_existing_entities() {
        let (_, _, _, output) = run_tiny();
        let mut new_total = 0usize;
        let mut existing_total = 0usize;
        for class_output in &output.classes {
            new_total += class_output.new_entities().len();
            existing_total += class_output.existing_entities().len();
        }
        assert!(new_total > 0, "pipeline should find new entities");
        assert!(existing_total > 0, "pipeline should link some entities to the KB");
    }

    #[test]
    fn pipeline_new_detection_beats_chance_on_gold_clusters() {
        let (_, _, golds, output) = run_tiny();
        // For every produced entity that maps cleanly onto a gold cluster,
        // check whether its new/existing classification agrees with the gold.
        let mut correct = 0usize;
        let mut total = 0usize;
        for class_output in &output.classes {
            let gold = golds.iter().find(|g| g.class == class_output.class).unwrap();
            for (entity, result) in class_output.entities.iter().zip(class_output.results.iter()) {
                if let Some(ci) = ltee_eval::instances::entity_gold_cluster(&entity.rows, gold) {
                    total += 1;
                    if gold.clusters[ci].is_new == result.outcome.is_new() {
                        correct += 1;
                    }
                }
            }
        }
        assert!(total > 20, "expected a reasonable number of evaluable entities, got {total}");
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.6, "new/existing agreement {acc:.2}");
    }

    #[test]
    fn clusters_partition_mapped_rows() {
        let (_, corpus, _, output) = run_tiny();
        for class_output in &output.classes {
            let mapped_rows = output.mapping.class_rows(&corpus, class_output.class).len();
            let clustered: usize = class_output.clusters.iter().map(|c| c.len()).sum();
            assert_eq!(clustered, mapped_rows);
        }
    }
}
