//! Class-shard control for the serve pipeline.
//!
//! The LTEE pipeline is embarrassingly partitionable by KB class: schema
//! matching assigns every table to exactly one class, and clustering,
//! fusion and new detection never look across class boundaries. A
//! [`ShardPlan`] exploits that: it groups the per-class serve states of an
//! [`crate::IncrementalPipeline`] into hashed shard buckets that ingest
//! concurrently on the work-stealing pool.
//!
//! ## Determinism contract
//!
//! A shard is **pure execution placement**, never a unit of state: every
//! class's accumulated state (streaming clusterer, label indexes, interner,
//! fused entities) is fully self-contained, shards operate on disjoint sets
//! of classes, and the cross-shard merge reads the per-class results back
//! in [`CLASS_KEYS`] order regardless of the grouping. Outputs are
//! therefore **bit-identical at every (shard count × thread count)** — the
//! same proof obligation as the thread-count contract, extended by
//! `tests/incremental_equivalence.rs` and `tests/recovery_equivalence.rs`
//! to a shards × threads matrix. For the same reason checkpoints persist
//! logical per-class state and restore under any shard count.

use ltee_kb::{ClassKey, CLASS_KEYS};
use serde::{Deserialize, Serialize};

/// How the per-class serve states are grouped into concurrently-ingesting
/// shards. Results are bit-identical at every setting; see the
/// [module docs](self).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardPlan {
    /// Resolve from the environment: `LTEE_NUM_SHARDS`, else a single
    /// shard (every class in one bucket — the pre-sharding behaviour).
    #[default]
    Auto,
    /// Pin exactly this many shard buckets (minimum 1). More shards than
    /// classes simply leaves some buckets empty.
    Shards(usize),
}

impl ShardPlan {
    /// The pinned shard count, or `None` for environment resolution.
    pub fn shard_count(self) -> Option<usize> {
        match self {
            ShardPlan::Auto => None,
            ShardPlan::Shards(n) => Some(n.max(1)),
        }
    }

    /// The number of shard buckets an ingest would use right now:
    /// the pinned count, else `LTEE_NUM_SHARDS`, else 1.
    pub fn resolve(self) -> usize {
        self.shard_count().unwrap_or_else(|| {
            std::env::var("LTEE_NUM_SHARDS")
                .ok()
                .and_then(|s| s.trim().parse::<usize>().ok())
                .map(|n| n.max(1))
                .unwrap_or(1)
        })
    }

    /// The shard bucket `class` lands in under a plan of `num_shards`
    /// buckets: an FNV-1a hash of the class code, reduced modulo the
    /// count. Stable across processes (no randomized hasher), so the same
    /// plan always produces the same grouping — which keeps bench and test
    /// runs comparable, even though the grouping never affects results.
    pub fn shard_of(class: ClassKey, num_shards: usize) -> usize {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        hash ^= class.code() as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        (hash % num_shards.max(1) as u64) as usize
    }

    /// The classes of each shard bucket under this plan, resolved now.
    /// Buckets are in shard order; classes within a bucket stay in
    /// [`CLASS_KEYS`] order.
    pub fn groups(self) -> Vec<Vec<ClassKey>> {
        let num_shards = self.resolve();
        let mut groups = vec![Vec::new(); num_shards];
        for class in CLASS_KEYS {
            groups[Self::shard_of(class, num_shards)].push(class);
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_counts_resolve() {
        // Auto resolves from the environment (which the CI matrix sets),
        // so only assert the invariant, not a specific count.
        assert!(ShardPlan::Auto.resolve() >= 1);
        assert_eq!(ShardPlan::Shards(4).resolve(), 4);
        // Zero shards makes no sense; clamp to one.
        assert_eq!(ShardPlan::Shards(0).resolve(), 1);
    }

    #[test]
    fn assignment_is_stable_and_in_range() {
        for num_shards in 1..=5 {
            for class in CLASS_KEYS {
                let shard = ShardPlan::shard_of(class, num_shards);
                assert!(shard < num_shards);
                assert_eq!(shard, ShardPlan::shard_of(class, num_shards), "stable");
            }
        }
        // One shard degenerates to the unsharded pipeline.
        assert!(CLASS_KEYS.iter().all(|&c| ShardPlan::shard_of(c, 1) == 0));
    }

    #[test]
    fn groups_partition_the_classes() {
        for num_shards in [1usize, 2, 3, 4, 7] {
            let groups = ShardPlan::Shards(num_shards).groups();
            assert_eq!(groups.len(), num_shards);
            let flattened: Vec<ClassKey> = groups.into_iter().flatten().collect();
            let mut sorted = flattened.clone();
            sorted.sort_by_key(|c| c.code());
            sorted.dedup();
            assert_eq!(sorted.len(), CLASS_KEYS.len(), "every class in exactly one bucket");
        }
    }
}
