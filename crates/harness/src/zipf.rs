//! Zipfian rank sampling over a finite universe.
//!
//! Real query traffic against an entity store is heavily skewed: a few
//! head entities absorb most lookups while the long tail is touched
//! rarely — the exact regime the paper's long-tail entities live in. The
//! sampler draws ranks `0..n` with probability proportional to
//! `1 / (rank + 1)^s`, so rank 0 is the hottest label and larger `s`
//! concentrates more mass in the head.

use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// A precomputed zipfian distribution over ranks `0..n`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Cumulative (unnormalised) weights; `cdf[r]` = mass of ranks `0..=r`.
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Distribution over `n` ranks with exponent `s` (finite, > 0).
    ///
    /// # Panics
    /// On `n == 0` or a non-finite / non-positive exponent — the config
    /// layer rejects both before a sampler is ever built.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf universe must be non-empty");
        assert!(s.is_finite() && s > 0.0, "zipf exponent must be finite and > 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(acc);
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the universe is empty (never true — see [`ZipfSampler::new`]).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw one rank in `0..len()`.
    pub fn sample(&self, rng: &mut ChaCha8Rng) -> usize {
        let total = *self.cdf.last().expect("non-empty universe");
        let u = rng.gen::<f64>() * total;
        // First rank whose cumulative mass exceeds the draw.
        self.cdf.partition_point(|&c| c <= u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn histogram(n: usize, s: f64, draws: usize) -> Vec<usize> {
        let sampler = ZipfSampler::new(n, s);
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut counts = vec![0usize; n];
        for _ in 0..draws {
            counts[sampler.sample(&mut rng)] += 1;
        }
        counts
    }

    #[test]
    fn head_ranks_dominate() {
        let counts = histogram(50, 1.2, 20_000);
        // Rank 0 must beat the uniform share by a wide margin…
        assert!(counts[0] > 20_000 / 50 * 4, "head rank too cold: {}", counts[0]);
        // …and the head must be (statistically) hotter than the tail.
        let head: usize = counts[..5].iter().sum();
        let tail: usize = counts[45..].iter().sum();
        assert!(head > tail * 10, "head {head} vs tail {tail}");
    }

    #[test]
    fn top_ranks_are_monotonically_cooler() {
        let counts = histogram(20, 1.5, 40_000);
        // With 40k draws at s = 1.5 the first few ranks are far enough
        // apart that sampling noise cannot reorder them.
        for w in counts[..4].windows(2) {
            assert!(w[0] > w[1], "rank order violated: {counts:?}");
        }
    }

    #[test]
    fn every_rank_is_reachable_and_in_range() {
        let sampler = ZipfSampler::new(3, 0.5);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut seen = [false; 3];
        for _ in 0..1_000 {
            seen[sampler.sample(&mut rng)] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let sampler = ZipfSampler::new(10, 1.0);
        let draw = |seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            (0..32).map(|_| sampler.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }
}
