//! # ltee-harness
//!
//! The workload harness: named, seeded traffic mixes driven end to end
//! through the serve pipeline (`ltee-serve`), with every run emitting a
//! **canonical** `BENCH_harness.json` — a report whose bytes depend only on
//! `(workload, seed)`, never on wall-clock time or thread count.
//!
//! ## Design
//!
//! A run is `config → tasks → metrics → report`:
//!
//! 1. [`config`] — a [`HarnessConfig`] names the world seed, the corpus
//!    source (one of the [`ltee::scenario::Scenario`] generators or the
//!    standard corpus generator), the ingest batching, the query mix
//!    ratios, and the zipf skew. Named presets live in [`workloads`].
//! 2. [`traffic`] — the mix ratios are apportioned into an *exact* query
//!    schedule (largest-remainder, virtual-time interleaved, so e.g. a
//!    3:1:0:0 mix over 4 queries is exactly `[E, E, F, E]`), then rendered
//!    into concrete [`ltee::serve::Query`] values: zipfian label skew
//!    ([`zipf`]) over the snapshot's popularity-ranked label universe.
//! 3. [`runner`] — ingest the corpus micro-batch by micro-batch, running
//!    one query phase per published snapshot version; then (optionally) a
//!    reader-churn phase with threads joining and leaving mid-ingest, and
//!    a sustained-ingest soak. Metrics ([`metrics`]) count only
//!    deterministic facts — hit counts, fingerprints, invariant booleans.
//! 4. [`report`] — a tiny canonical JSON writer (the vendored serde shim
//!    cannot serialise): fixed key order, fixed float formatting,
//!    fingerprints as hex strings.
//!
//! ## The determinism contract
//!
//! `BENCH_harness.json` is byte-identical across repeated runs *and*
//! across `LTEE_NUM_THREADS=1,4`, because the serve pipeline's responses
//! are bit-identical at every thread count and the report deliberately
//! excludes every nondeterministic observable: wall-clock timings print to
//! stdout only, and the churn phase contributes only invariants (version
//! monotonicity, replay identity against [`snapshot_at`]) rather than the
//! nondeterministic interleavings it observed.
//!
//! [`snapshot_at`]: ltee::serve::SnapshotReader::snapshot_at
//!
//! ```sh
//! cargo run -p ltee-harness -- --workload steady-read --seed 42
//! cargo run -p ltee-harness -- --list
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod metrics;
pub mod report;
pub mod runner;
pub mod traffic;
pub mod workloads;
pub mod zipf;

pub use config::{ConfigError, HarnessConfig, MixRatios};
pub use report::Json;
pub use runner::{run, RunReport};
pub use workloads::{named_workload, workload_names, WORKLOADS};
