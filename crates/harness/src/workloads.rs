//! Named workload presets.
//!
//! A workload fixes everything except the master seed: corpus source,
//! batching, traffic mix, skew, churn and soak. `(workload, seed)` is the
//! complete cache key of a run's report.

use ltee::scenario::Scenario;

use crate::config::{HarnessConfig, MixRatios};

/// The world every preset trains on: one fixed seed, so reports across
/// workloads describe the same knowledge base and only the corpus +
/// traffic vary.
const WORLD_SEED: u64 = 4242;

/// `(name, description)` of every named workload, CLI `--list` order.
pub const WORKLOADS: &[(&str, &str)] = &[
    ("steady-read", "balanced mix over the standard corpus, mild zipf skew"),
    ("zipf-hot", "lookup-dominant traffic with a scorching head (s = 1.8)"),
    ("fuzzy-storm", "fuzzy-heavy traffic over the near-duplicate label flood"),
    ("novel-churn", "novel-entity stream with readers joining/leaving mid-ingest"),
    ("multilingual-mixed", "balanced mix over the multilingual-headers scenario"),
    ("scientific-fetch", "record-fetch-heavy traffic over scientific-paper tables"),
    ("ingest-soak", "sustained re-ingest soak under paging-heavy background reads"),
    (
        "sharded-steady",
        "the steady-read mix at more micro-batches; shard count via LTEE_NUM_SHARDS, \
         report bytes identical at every setting",
    ),
];

/// Just the names, for error messages.
pub fn workload_names() -> Vec<&'static str> {
    WORKLOADS.iter().map(|(name, _)| *name).collect()
}

/// Resolve a named workload at a master seed. `None` for unknown names.
pub fn named_workload(name: &str, seed: u64) -> Option<HarnessConfig> {
    let base = |mix: MixRatios, zipf_s: f64| HarnessConfig {
        workload: name.to_string(),
        seed,
        world_seed: WORLD_SEED,
        scenario: None,
        batches: 3,
        queries_per_phase: 150,
        mix,
        zipf_s,
        fuzzy_k: 5,
        page_limit: 10,
        churn_readers: 0,
        soak_rounds: 0,
    };
    Some(match name {
        "steady-read" => HarnessConfig {
            batches: 4,
            ..base(MixRatios { exact: 40, fuzzy: 30, fetch: 20, paging: 10 }, 1.1)
        },
        "zipf-hot" => HarnessConfig {
            queries_per_phase: 200,
            ..base(MixRatios { exact: 60, fuzzy: 30, fetch: 5, paging: 5 }, 1.8)
        },
        "fuzzy-storm" => HarnessConfig {
            scenario: Some(Scenario::NearDuplicateFlood),
            fuzzy_k: 8,
            ..base(MixRatios { exact: 10, fuzzy: 70, fetch: 10, paging: 10 }, 1.2)
        },
        "novel-churn" => HarnessConfig {
            scenario: Some(Scenario::NovelEntityStream),
            batches: 4,
            queries_per_phase: 120,
            churn_readers: 4,
            ..base(MixRatios { exact: 35, fuzzy: 25, fetch: 25, paging: 15 }, 1.1)
        },
        "multilingual-mixed" => HarnessConfig {
            scenario: Some(Scenario::MultilingualHeaders),
            ..base(MixRatios { exact: 30, fuzzy: 30, fetch: 25, paging: 15 }, 1.3)
        },
        "scientific-fetch" => HarnessConfig {
            scenario: Some(Scenario::ScientificTables),
            ..base(MixRatios { exact: 20, fuzzy: 10, fetch: 55, paging: 15 }, 1.1)
        },
        "ingest-soak" => HarnessConfig {
            batches: 4,
            queries_per_phase: 100,
            churn_readers: 2,
            soak_rounds: 2,
            ..base(MixRatios { exact: 25, fuzzy: 15, fetch: 20, paging: 40 }, 1.0)
        },
        // The class-sharding workload: the steady-read traffic mix over
        // more micro-batches (more per-shard ingest rounds). The shard
        // count itself is *not* part of the preset — it flows in through
        // `LTEE_NUM_SHARDS` via `ShardPlan::Auto` in the pipeline config,
        // and the determinism contract makes the report a pure function
        // of `(workload, seed)` regardless: CI runs this preset at 1 and
        // 4 shards and asserts the report files are byte-identical.
        "sharded-steady" => HarnessConfig {
            batches: 6,
            ..base(MixRatios { exact: 40, fuzzy: 30, fetch: 20, paging: 10 }, 1.1)
        },
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_workload_resolves_and_echoes_its_name() {
        for (name, description) in WORKLOADS {
            let config = named_workload(name, 3).expect("listed name resolves");
            assert_eq!(config.workload, *name);
            assert!(!description.is_empty());
        }
        assert_eq!(workload_names().len(), WORKLOADS.len());
    }

    #[test]
    fn churn_and_soak_presets_enable_their_phases() {
        assert!(named_workload("novel-churn", 1).unwrap().churn_readers > 0);
        let soak = named_workload("ingest-soak", 1).unwrap();
        assert!(soak.soak_rounds > 0);
        // The four scenario generators are all exercised by some preset.
        let covered: Vec<_> = WORKLOADS
            .iter()
            .filter_map(|(name, _)| named_workload(name, 1).unwrap().scenario)
            .collect();
        for scenario in Scenario::ALL {
            assert!(covered.contains(&scenario), "{} not covered", scenario.name());
        }
    }
}
