//! The workload runner: config in, canonical report out.
//!
//! A run has up to three movements:
//!
//! 1. **Phased ingest + query traffic** — the corpus is split into
//!    micro-batches; after each published snapshot version one query phase
//!    executes the scheduled traffic mix against that exact version.
//! 2. **Reader churn** (optional) — reader threads join while a second,
//!    id-shifted copy of the corpus ingests, run a fixed probe batch
//!    against whatever versions they observe, and leave at staggered
//!    times. The *observations* are nondeterministic (which versions a
//!    reader sees depends on scheduling) so only invariants reach the
//!    report: per-reader version monotonicity, and replay identity — every
//!    observed `(version, fingerprint)` must reproduce exactly from
//!    [`SnapshotReader::snapshot_at`] after the fact.
//! 3. **Sustained-ingest soak** (optional) — further full re-ingests of
//!    the corpus under fresh table ids, recording the (deterministic)
//!    ingest report aggregates per round.
//!
//! Wall-clock timings are printed to stdout and never enter the report:
//! `BENCH_harness.json` must hash identically across runs, hosts, and
//! `LTEE_NUM_THREADS` settings.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use ltee::prelude::*;
use ltee::scenario::{ScenarioSeed, TrainedWorld};
use ltee::serve::{KbSnapshot, Query, ServePipeline, SnapshotReader};
use ltee::webtables::TableId;

use crate::config::{ConfigError, HarnessConfig};
use crate::metrics::{chain, fingerprint, PhaseMetrics, RunTotals};
use crate::report::Json;
use crate::traffic::{schedule, LabelUniverse};
use crate::zipf::ZipfSampler;

/// A finished run: the canonical report, ready to render.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The report tree; field order is fixed by construction.
    pub json: Json,
}

impl RunReport {
    /// The canonical bytes of `BENCH_harness.json`.
    pub fn render(&self) -> String {
        self.json.render()
    }
}

/// Re-key a corpus's table ids by `offset`, so the same tables can be
/// re-served as fresh arrivals (duplicate ids are rejected by ingest).
fn shift_tables(corpus: &Corpus, offset: u64) -> Corpus {
    Corpus::from_tables(
        corpus
            .tables()
            .iter()
            .map(|t| {
                let mut t = t.clone();
                t.id = TableId(t.id.raw() + offset);
                t
            })
            .collect(),
    )
}

/// One reader's life in the churn phase: join, watch versions go by while
/// running the probe batch, leave after `passes` snapshots (or as soon as
/// the writer signals completion, whichever comes first — so low-pass
/// readers genuinely leave mid-ingest).
fn churn_reader(
    reader: SnapshotReader,
    probe: &[Query],
    passes: usize,
    writer_done: &AtomicBool,
) -> Vec<(u64, u64)> {
    let mut observed = Vec::with_capacity(passes);
    for _ in 0..passes {
        let snap = reader.snapshot();
        let outputs = snap.execute_batch(probe);
        observed.push((snap.version(), fingerprint(&outputs)));
        if writer_done.load(Ordering::Relaxed) {
            break;
        }
        std::thread::yield_now();
    }
    observed
}

/// Execute the workload and assemble the canonical report.
pub fn run(config: &HarnessConfig) -> Result<RunReport, ConfigError> {
    config.validate()?;
    let seed = ScenarioSeed::new(config.seed);

    let setup_started = Instant::now();
    let trained = TrainedWorld::train(config.world_seed);
    let corpus = match config.scenario {
        Some(scenario) => trained.scenario_corpus(scenario, config.seed),
        None => generate_corpus(
            &trained.world,
            &CorpusConfig { seed: config.seed, ..CorpusConfig::tiny() },
        ),
    };
    println!(
        "harness: {} — {} tables, {} rows from `{}` (setup {:.3} s)",
        config.workload,
        corpus.len(),
        corpus.total_rows(),
        config.corpus_source(),
        setup_started.elapsed().as_secs_f64()
    );

    let mut serving = trained.serve();

    // Movement 1: phased ingest + traffic.
    let mut phases: Vec<PhaseMetrics> = Vec::new();
    let mut totals = RunTotals::default();
    let phase_started = Instant::now();
    for (i, batch) in corpus.split_into_batches(config.batches).into_iter().enumerate() {
        serving.ingest(&batch).expect("fresh table ids");
        let snap = serving.snapshot();
        let universe = LabelUniverse::from_snapshot(&snap);
        if universe.is_empty() {
            continue;
        }
        let zipf = ZipfSampler::new(universe.len(), config.zipf_s);
        let kinds = schedule(&config.mix, config.queries_per_phase);
        let mut rng = seed.stream(&format!("traffic/phase-{i}"));
        let queries = crate::traffic::build_queries(
            &snap,
            &kinds,
            &universe,
            &zipf,
            &mut rng,
            config.fuzzy_k,
            config.page_limit,
        );
        let outputs = snap.execute_batch(&queries);
        let metrics = PhaseMetrics::measure(snap.version(), &kinds, &outputs);
        totals.absorb(&metrics);
        phases.push(metrics);
    }
    println!(
        "harness: {} phases, {} queries in {:.3} s",
        phases.len(),
        totals.queries,
        phase_started.elapsed().as_secs_f64()
    );

    // Movement 2: reader churn during a second ingest of the corpus.
    let churn = if config.churn_readers > 0 {
        Some(run_churn(config, &seed, &mut serving, &corpus))
    } else {
        None
    };

    // Movement 3: sustained-ingest soak.
    let soak = if config.soak_rounds > 0 {
        Some(run_soak(config, &mut serving, &corpus))
    } else {
        None
    };

    Ok(RunReport { json: assemble(config, &corpus, &phases, &totals, churn, soak, &serving) })
}

/// Deterministic outcome of the churn phase.
struct ChurnOutcome {
    readers: usize,
    probe_queries: usize,
    start_version: u64,
    final_version: u64,
    versions_monotonic: bool,
    replay_identical: bool,
}

fn run_churn(
    config: &HarnessConfig,
    seed: &ScenarioSeed,
    serving: &mut ServePipeline<'_>,
    corpus: &Corpus,
) -> ChurnOutcome {
    // A fixed probe batch from the currently served labels: exact lookups
    // plus a stats query. Label-based (not EntityRef-based), so it stays
    // meaningful — and deterministic per version — as versions advance.
    let snap = serving.snapshot();
    let universe = LabelUniverse::from_snapshot(&snap);
    let mut rng = seed.stream("churn/probe");
    let zipf = ZipfSampler::new(universe.len().max(1), config.zipf_s);
    let mut probe: Vec<Query> = Vec::new();
    for _ in 0..12.min(universe.len()) {
        let entry = &universe.entries[zipf.sample(&mut rng)];
        probe.push(Query::Exact { class: None, label: entry.label.clone() });
    }
    probe.push(Query::Stats);

    let start_version = serving.version();
    let shifted = shift_tables(corpus, 10_000_000);
    let writer_done = AtomicBool::new(false);
    let churn_started = Instant::now();

    let observations: Vec<Vec<(u64, u64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.churn_readers)
            .map(|r| {
                let reader = serving.reader();
                let probe = &probe;
                let writer_done = &writer_done;
                // Staggered lifetimes: reader r leaves after 4 + 3r
                // snapshots, so early readers depart while later batches
                // are still ingesting.
                scope.spawn(move || churn_reader(reader, probe, 4 + 3 * r, writer_done))
            })
            .collect();
        for batch in shifted.split_into_batches(config.batches) {
            serving.ingest(&batch).expect("shifted ids are fresh");
        }
        writer_done.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().expect("churn reader")).collect()
    });

    // Only invariants reach the report. Which versions each reader saw is
    // scheduling-dependent; that every sighting is monotone and replays
    // bit-identically from the retention window is not. (The churn phase
    // publishes fewer versions than the default retention window keeps,
    // so every observed version must still be replayable — a typed
    // `VersionReclaimed` here would be a real regression, not timing.)
    let mut versions_monotonic = true;
    let mut replay_identical = true;
    let reader = serving.reader();
    for observed in &observations {
        versions_monotonic &= observed.windows(2).all(|w| w[0].0 <= w[1].0);
        for &(version, fp) in observed {
            match reader.snapshot_at(version) {
                Ok(historic) => {
                    replay_identical &= fingerprint(&historic.execute_batch(&probe)) == fp;
                }
                Err(_) => replay_identical = false,
            }
        }
    }
    let sightings: usize = observations.iter().map(Vec::len).sum();
    println!(
        "harness: churn — {} readers, {} sightings, v{} -> v{} in {:.3} s",
        config.churn_readers,
        sightings,
        start_version,
        serving.version(),
        churn_started.elapsed().as_secs_f64()
    );

    ChurnOutcome {
        readers: config.churn_readers,
        probe_queries: probe.len(),
        start_version,
        final_version: serving.version(),
        versions_monotonic,
        replay_identical,
    }
}

/// Deterministic outcome of one soak round.
struct SoakRound {
    version_after: u64,
    tables: usize,
    rows: usize,
    mapped_rows: usize,
    new_clusters: usize,
    updated_clusters: usize,
    /// Snapshot versions resident at round end. Sampled only at the round
    /// boundary, where it is a pure function of the version count and the
    /// retention window (no readers are mid-load and limbo has drained),
    /// so report bytes stay identical at every thread/shard count.
    versions_retained: usize,
    /// Versions reclaimed since the pipeline started, at round end.
    versions_reclaimed: u64,
}

fn run_soak(
    config: &HarnessConfig,
    serving: &mut ServePipeline<'_>,
    corpus: &Corpus,
) -> Vec<SoakRound> {
    let mut rounds = Vec::with_capacity(config.soak_rounds);
    let soak_started = Instant::now();
    for round in 0..config.soak_rounds {
        let shifted = shift_tables(corpus, (round as u64 + 2) * 10_000_000);
        let mut totals = SoakRound {
            version_after: 0,
            tables: 0,
            rows: 0,
            mapped_rows: 0,
            new_clusters: 0,
            updated_clusters: 0,
            versions_retained: 0,
            versions_reclaimed: 0,
        };
        for batch in shifted.split_into_batches(config.batches) {
            let report = serving.ingest(&batch).expect("shifted ids are fresh");
            totals.tables += report.tables;
            totals.rows += report.rows;
            totals.mapped_rows += report.mapped_rows;
            totals.new_clusters += report.new_clusters;
            totals.updated_clusters += report.updated_clusters;
        }
        totals.version_after = serving.version();
        totals.versions_retained = serving.versions_retained();
        totals.versions_reclaimed = serving.versions_reclaimed();
        rounds.push(totals);
    }
    println!(
        "harness: soak — {} rounds to v{} in {:.3} s",
        config.soak_rounds,
        serving.version(),
        soak_started.elapsed().as_secs_f64()
    );
    rounds
}

fn mix_json(config: &HarnessConfig) -> Json {
    let mut mix = Json::obj();
    mix.push("exact", Json::uint(config.mix.exact as usize));
    mix.push("fuzzy", Json::uint(config.mix.fuzzy as usize));
    mix.push("fetch", Json::uint(config.mix.fetch as usize));
    mix.push("paging", Json::uint(config.mix.paging as usize));
    mix
}

fn phase_json(phase: &PhaseMetrics) -> Json {
    let mut p = Json::obj();
    p.push("version", Json::Uint(phase.version));
    p.push("queries", Json::uint(phase.queries));
    let mut by_kind = Json::obj();
    for kind in crate::traffic::QueryKind::ALL {
        by_kind.push(kind.name(), Json::uint(phase.by_kind[kind.index()]));
    }
    p.push("by_kind", by_kind);
    p.push("lookup_hits", Json::uint(phase.lookup_hits));
    p.push("empty_lookups", Json::uint(phase.empty_lookups));
    p.push("entities_fetched", Json::uint(phase.entities_fetched));
    p.push("page_entities", Json::uint(phase.page_entities));
    p.push("fingerprint", Json::hex(phase.fingerprint));
    p
}

fn assemble(
    config: &HarnessConfig,
    corpus: &Corpus,
    phases: &[PhaseMetrics],
    totals: &RunTotals,
    churn: Option<ChurnOutcome>,
    soak: Option<Vec<SoakRound>>,
    serving: &ServePipeline<'_>,
) -> Json {
    let mut report = Json::obj();
    report.push("bench", Json::str("harness"));
    report.push("workload", Json::str(&config.workload));
    report.push("seed", Json::Uint(config.seed));
    report.push("world_seed", Json::Uint(config.world_seed));
    report.push("corpus_source", Json::str(config.corpus_source()));

    let mut corpus_json = Json::obj();
    corpus_json.push("tables", Json::uint(corpus.len()));
    corpus_json.push("rows", Json::uint(corpus.total_rows()));
    report.push("corpus", corpus_json);

    let mut config_json = Json::obj();
    config_json.push("batches", Json::uint(config.batches));
    config_json.push("queries_per_phase", Json::uint(config.queries_per_phase));
    config_json.push("mix", mix_json(config));
    config_json.push("zipf_s", Json::Float(config.zipf_s));
    config_json.push("fuzzy_k", Json::uint(config.fuzzy_k));
    config_json.push("page_limit", Json::uint(config.page_limit));
    config_json.push("churn_readers", Json::uint(config.churn_readers));
    config_json.push("soak_rounds", Json::uint(config.soak_rounds));
    report.push("config", config_json);

    report.push("phases", Json::Arr(phases.iter().map(phase_json).collect()));

    let mut totals_json = Json::obj();
    totals_json.push("phases", Json::uint(totals.phases));
    totals_json.push("queries", Json::uint(totals.queries));
    let mut by_kind = Json::obj();
    for kind in crate::traffic::QueryKind::ALL {
        by_kind.push(kind.name(), Json::uint(totals.by_kind[kind.index()]));
    }
    totals_json.push("by_kind", by_kind);
    totals_json.push("lookup_hits", Json::uint(totals.lookup_hits));
    totals_json.push("empty_lookups", Json::uint(totals.empty_lookups));
    totals_json.push("entities_fetched", Json::uint(totals.entities_fetched));
    totals_json.push("page_entities", Json::uint(totals.page_entities));
    totals_json.push("fingerprint", Json::hex(totals.fingerprint));
    report.push("totals", totals_json);

    report.push(
        "churn",
        match churn {
            None => Json::Null,
            Some(c) => {
                let mut churn_json = Json::obj();
                churn_json.push("readers", Json::uint(c.readers));
                churn_json.push("probe_queries", Json::uint(c.probe_queries));
                churn_json.push("start_version", Json::Uint(c.start_version));
                churn_json.push("final_version", Json::Uint(c.final_version));
                churn_json.push("versions_monotonic", Json::Bool(c.versions_monotonic));
                churn_json.push("replay_identical", Json::Bool(c.replay_identical));
                churn_json
            }
        },
    );

    report.push(
        "soak",
        match soak {
            None => Json::Null,
            Some(rounds) => Json::Arr(
                rounds
                    .iter()
                    .map(|r| {
                        let mut round = Json::obj();
                        round.push("version_after", Json::Uint(r.version_after));
                        round.push("tables", Json::uint(r.tables));
                        round.push("rows", Json::uint(r.rows));
                        round.push("mapped_rows", Json::uint(r.mapped_rows));
                        round.push("new_clusters", Json::uint(r.new_clusters));
                        round.push("updated_clusters", Json::uint(r.updated_clusters));
                        round.push("versions_retained", Json::uint(r.versions_retained));
                        round.push("versions_reclaimed", Json::Uint(r.versions_reclaimed));
                        round
                    })
                    .collect(),
            ),
        },
    );

    report.push("final", final_json(&serving.snapshot()));
    report
}

fn final_json(snap: &KbSnapshot) -> Json {
    let stats = snap.stats();
    let mut f = Json::obj();
    f.push("version", Json::Uint(stats.version));
    f.push("tables", Json::uint(stats.tables));
    f.push("rows", Json::uint(stats.rows));
    f.push(
        "classes",
        Json::Arr(
            stats
                .classes
                .iter()
                .map(|c| {
                    let mut class = Json::obj();
                    class.push("class", Json::str(c.class.to_string()));
                    class.push("entities", Json::uint(c.entities));
                    class.push("new_entities", Json::uint(c.new_entities));
                    class.push("linked_entities", Json::uint(c.linked_entities));
                    class.push("rows", Json::uint(c.rows));
                    class
                })
                .collect(),
        ),
    );
    // One value that moves if *anything* in the final stats moves.
    f.push(
        "stats_fingerprint",
        Json::hex(chain(0, ltee::ml::codec::fnv1a64(format!("{stats:?}").as_bytes()))),
    );
    f
}
