//! A tiny canonical JSON writer.
//!
//! The vendored serde shim has no real serialisation, so the report is
//! built from this value type and rendered by hand. "Canonical" means the
//! bytes are a pure function of the value: object keys appear in
//! insertion order (which the runner fixes in code), floats always render
//! with four decimals, fingerprints render as fixed-width hex strings,
//! and indentation is two spaces throughout. Rendering the same report
//! twice — or from runs at different thread counts — yields identical
//! bytes, which the CI smoke job checks with a plain byte comparison.

use std::fmt::Write as _;

/// One JSON value. Construct with the helper constructors; render with
/// [`Json::render`].
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (all counters in the report are unsigned).
    Uint(u64),
    /// A float, canonically rendered with four decimals.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys render in the order they were pushed.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An unsigned counter.
    pub fn uint(n: usize) -> Json {
        Json::Uint(n as u64)
    }

    /// A fingerprint as a fixed-width hex string (`"0x1234567890abcdef"`),
    /// not a number: 64-bit values do not survive JSON number parsing.
    pub fn hex(fp: u64) -> Json {
        Json::Str(format!("{fp:#018x}"))
    }

    /// An empty object to be filled with [`Json::push`].
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a key to an object (panics on non-objects — report
    /// construction is all static code).
    pub fn push(&mut self, key: &str, value: Json) -> &mut Json {
        match self {
            Json::Obj(fields) => fields.push((key.to_string(), value)),
            other => panic!("push on non-object {other:?}"),
        }
        self
    }

    /// Render to the canonical text form (trailing newline included).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                out.push_str(if *b { "true" } else { "false" });
            }
            Json::Uint(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => {
                // Fixed four decimals: enough for ratios in [0, 1] and
                // immune to shortest-representation drift.
                let _ = write!(out, "{x:.4}");
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    pad(out, indent + 1);
                    let _ = write!(out, "\"{key}\": ");
                    value.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_is_canonical() {
        let mut report = Json::obj();
        report.push("name", Json::str("steady-read"));
        report.push("seed", Json::uint(42));
        report.push("share", Json::Float(0.5));
        report.push("ok", Json::Bool(true));
        report.push("fp", Json::hex(0xdead_beef));
        report.push("phases", Json::Arr(vec![Json::uint(1), Json::uint(2)]));
        report.push("empty", Json::obj());
        let expected = "{\n  \"name\": \"steady-read\",\n  \"seed\": 42,\n  \"share\": 0.5000,\n  \"ok\": true,\n  \"fp\": \"0x00000000deadbeef\",\n  \"phases\": [\n    1,\n    2\n  ],\n  \"empty\": {}\n}\n";
        assert_eq!(report.render(), expected);
        // Byte-stable across repeated renders.
        assert_eq!(report.render(), report.render());
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::str("a\"b\\c\nd\u{1}").render(), "\"a\\\"b\\\\c\\nd\\u0001\"\n");
        // Non-ASCII passes through as UTF-8 (no \u escaping needed).
        assert_eq!(Json::str("İstanbul").render(), "\"İstanbul\"\n");
    }
}
