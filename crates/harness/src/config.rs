//! Harness run configuration: what to serve, what traffic to send.

use ltee::scenario::Scenario;

/// Relative weights of the four query kinds in the traffic mix.
///
/// Weights are dimensionless; only ratios matter. [`crate::traffic::schedule`]
/// apportions any total query count into *exact* per-kind counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixRatios {
    /// Exact label lookups of served labels.
    pub exact: u32,
    /// Fuzzy top-k lookups of mangled labels.
    pub fuzzy: u32,
    /// Entity record fetches.
    pub fetch: u32,
    /// Class listing pages.
    pub paging: u32,
}

impl MixRatios {
    /// Sum of the weights.
    pub fn total(&self) -> u32 {
        self.exact + self.fuzzy + self.fetch + self.paging
    }
}

/// One harness run: corpus source, ingest batching, traffic shape.
///
/// The report is a pure function of this struct — two runs with equal
/// configs produce byte-identical `BENCH_harness.json` at any thread
/// count. Thread count is therefore deliberately *not* part of the config.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessConfig {
    /// The workload's name, echoed into the report.
    pub workload: String,
    /// Master seed: keys the traffic RNG streams and the corpus seed.
    pub seed: u64,
    /// Seed of the synthetic world the models are trained on.
    pub world_seed: u64,
    /// Corpus source: a named scenario generator, or `None` for the
    /// standard corpus generator re-seeded from `seed`.
    pub scenario: Option<Scenario>,
    /// Micro-batches the corpus is split into; one query phase runs per
    /// published snapshot version.
    pub batches: usize,
    /// Queries per phase.
    pub queries_per_phase: usize,
    /// Traffic mix ratios.
    pub mix: MixRatios,
    /// Zipf skew exponent over the popularity-ranked label universe
    /// (larger → hotter head; must be finite and > 0).
    pub zipf_s: f64,
    /// `k` of fuzzy lookups.
    pub fuzzy_k: usize,
    /// Page size of listing queries.
    pub page_limit: usize,
    /// Reader threads joining and leaving during the churn phase
    /// (0 disables the phase).
    pub churn_readers: usize,
    /// Sustained-ingest soak rounds re-serving the corpus under shifted
    /// table ids (0 disables soak).
    pub soak_rounds: usize,
}

/// Why a configuration was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// All four mix weights are zero.
    EmptyMix,
    /// The zipf exponent is not a finite positive number.
    BadZipfExponent,
    /// A count field that must be positive is zero.
    ZeroCount(&'static str),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::EmptyMix => write!(f, "mix ratios sum to zero"),
            ConfigError::BadZipfExponent => {
                write!(f, "zipf exponent must be finite and > 0")
            }
            ConfigError::ZeroCount(field) => write!(f, "{field} must be > 0"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl HarnessConfig {
    /// Check the invariants the runner relies on.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.mix.total() == 0 {
            return Err(ConfigError::EmptyMix);
        }
        if !self.zipf_s.is_finite() || self.zipf_s <= 0.0 {
            return Err(ConfigError::BadZipfExponent);
        }
        if self.batches == 0 {
            return Err(ConfigError::ZeroCount("batches"));
        }
        if self.queries_per_phase == 0 {
            return Err(ConfigError::ZeroCount("queries_per_phase"));
        }
        if self.fuzzy_k == 0 {
            return Err(ConfigError::ZeroCount("fuzzy_k"));
        }
        if self.page_limit == 0 {
            return Err(ConfigError::ZeroCount("page_limit"));
        }
        Ok(())
    }

    /// The corpus source's name, for the report.
    pub fn corpus_source(&self) -> &'static str {
        match self.scenario {
            Some(s) => s.name(),
            None => "generator",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::named_workload;

    #[test]
    fn named_workloads_validate() {
        for (name, _) in crate::workloads::WORKLOADS {
            let config = named_workload(name, 7).expect("listed workload resolves");
            config.validate().unwrap_or_else(|e| panic!("workload `{name}` invalid: {e}"));
            assert_eq!(config.workload, *name);
            assert_eq!(config.seed, 7);
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let base = named_workload("steady-read", 1).unwrap();

        let mut zero_mix = base.clone();
        zero_mix.mix = MixRatios { exact: 0, fuzzy: 0, fetch: 0, paging: 0 };
        assert_eq!(zero_mix.validate(), Err(ConfigError::EmptyMix));

        let mut bad_zipf = base.clone();
        bad_zipf.zipf_s = 0.0;
        assert_eq!(bad_zipf.validate(), Err(ConfigError::BadZipfExponent));
        bad_zipf.zipf_s = f64::NAN;
        assert_eq!(bad_zipf.validate(), Err(ConfigError::BadZipfExponent));

        let mut zero_batches = base.clone();
        zero_batches.batches = 0;
        assert_eq!(zero_batches.validate(), Err(ConfigError::ZeroCount("batches")));

        let mut zero_queries = base;
        zero_queries.queries_per_phase = 0;
        assert_eq!(
            zero_queries.validate(),
            Err(ConfigError::ZeroCount("queries_per_phase"))
        );
    }

    #[test]
    fn unknown_workload_is_none() {
        assert!(named_workload("no-such-workload", 1).is_none());
    }
}
