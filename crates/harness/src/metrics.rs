//! Deterministic metric aggregation over query responses.
//!
//! Everything counted here is a pure function of the responses, which are
//! themselves bit-identical at every thread count — so phase metrics (and
//! their run-level aggregation) can go straight into the canonical
//! report. Wall-clock numbers deliberately have no home in this module.

use ltee::serve::QueryOutput;

use crate::traffic::QueryKind;

/// FNV-1a fingerprint of a response stream's complete `Debug` rendering:
/// any divergence — ids, scores, labels, facts, provenance, page
/// contents — changes the value.
pub fn fingerprint(outputs: &[QueryOutput]) -> u64 {
    ltee::ml::codec::fnv1a64(format!("{outputs:?}").as_bytes())
}

/// Chain `next` onto an accumulated fingerprint (multiply-xor, not plain
/// XOR: XOR would cancel a stable-but-wrong phase pair to zero).
pub fn chain(acc: u64, next: u64) -> u64 {
    acc.wrapping_mul(0x0000_0100_0000_01b3) ^ next
}

/// What one query phase (one snapshot version) observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseMetrics {
    /// The snapshot version the phase ran against.
    pub version: u64,
    /// Queries executed.
    pub queries: usize,
    /// Per-kind query counts, [`QueryKind::ALL`] order.
    pub by_kind: [usize; 4],
    /// Hits returned by exact + fuzzy lookups.
    pub lookup_hits: usize,
    /// Lookups that returned no hit.
    pub empty_lookups: usize,
    /// Entity fetches that resolved to a record.
    pub entities_fetched: usize,
    /// Entities returned across listing pages.
    pub page_entities: usize,
    /// Fingerprint of the full response stream.
    pub fingerprint: u64,
}

impl PhaseMetrics {
    /// Measure one phase from its kind schedule and responses.
    ///
    /// # Panics
    /// If `kinds` and `outputs` disagree in length — the runner always
    /// executes exactly the scheduled batch.
    pub fn measure(version: u64, kinds: &[QueryKind], outputs: &[QueryOutput]) -> Self {
        assert_eq!(kinds.len(), outputs.len(), "one response per scheduled query");
        let mut metrics = PhaseMetrics {
            version,
            queries: outputs.len(),
            by_kind: [0; 4],
            lookup_hits: 0,
            empty_lookups: 0,
            entities_fetched: 0,
            page_entities: 0,
            fingerprint: fingerprint(outputs),
        };
        for (&kind, output) in kinds.iter().zip(outputs) {
            metrics.by_kind[kind.index()] += 1;
            match output {
                QueryOutput::Hits(hits) => {
                    metrics.lookup_hits += hits.len();
                    if hits.is_empty() {
                        metrics.empty_lookups += 1;
                    }
                }
                QueryOutput::Entity(record) => {
                    if record.is_some() {
                        metrics.entities_fetched += 1;
                    }
                }
                QueryOutput::Page(page) => metrics.page_entities += page.entities.len(),
                QueryOutput::Stats(_) => {}
            }
        }
        metrics
    }
}

/// Run-level aggregation of phase metrics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunTotals {
    /// Phases absorbed.
    pub phases: usize,
    /// Total queries.
    pub queries: usize,
    /// Per-kind totals, [`QueryKind::ALL`] order.
    pub by_kind: [usize; 4],
    /// Total lookup hits.
    pub lookup_hits: usize,
    /// Total empty lookups.
    pub empty_lookups: usize,
    /// Total resolved entity fetches.
    pub entities_fetched: usize,
    /// Total page entities.
    pub page_entities: usize,
    /// Chained fingerprint over the phases, in order.
    pub fingerprint: u64,
}

impl RunTotals {
    /// Fold one phase into the totals (order-sensitive via the chained
    /// fingerprint).
    pub fn absorb(&mut self, phase: &PhaseMetrics) {
        self.phases += 1;
        self.queries += phase.queries;
        for i in 0..4 {
            self.by_kind[i] += phase.by_kind[i];
        }
        self.lookup_hits += phase.lookup_hits;
        self.empty_lookups += phase.empty_lookups;
        self.entities_fetched += phase.entities_fetched;
        self.page_entities += phase.page_entities;
        self.fingerprint = chain(self.fingerprint, phase.fingerprint);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltee::prelude::ClassKey;
    use ltee::serve::{ClassPage, EntityHit, EntityRef};

    fn hit(score: f64) -> EntityHit {
        EntityHit {
            entity: EntityRef { class: ClassKey::Song, id: 0 },
            score,
            label: "x".into(),
        }
    }

    #[test]
    fn measure_known_answer() {
        let kinds = [QueryKind::Exact, QueryKind::Fuzzy, QueryKind::Fetch, QueryKind::Paging];
        let outputs = [
            QueryOutput::Hits(vec![hit(1.0), hit(1.0)]),
            QueryOutput::Hits(vec![]),
            QueryOutput::Entity(None),
            QueryOutput::Page(ClassPage {
                class: ClassKey::Song,
                total: 9,
                offset: 2,
                entities: vec![
                    EntityRef { class: ClassKey::Song, id: 2 },
                    EntityRef { class: ClassKey::Song, id: 3 },
                    EntityRef { class: ClassKey::Song, id: 4 },
                ],
            }),
        ];
        let m = PhaseMetrics::measure(3, &kinds, &outputs);
        assert_eq!(m.version, 3);
        assert_eq!(m.queries, 4);
        assert_eq!(m.by_kind, [1, 1, 1, 1]);
        assert_eq!(m.lookup_hits, 2);
        assert_eq!(m.empty_lookups, 1);
        assert_eq!(m.entities_fetched, 0);
        assert_eq!(m.page_entities, 3);
        assert_eq!(m.fingerprint, fingerprint(&outputs));
    }

    #[test]
    fn totals_absorb_known_answer() {
        let kinds = [QueryKind::Exact, QueryKind::Exact];
        let a = PhaseMetrics::measure(1, &kinds, &[
            QueryOutput::Hits(vec![hit(1.0)]),
            QueryOutput::Hits(vec![]),
        ]);
        let b = PhaseMetrics::measure(2, &kinds, &[
            QueryOutput::Hits(vec![hit(1.0), hit(0.5)]),
            QueryOutput::Hits(vec![hit(0.9)]),
        ]);
        let mut totals = RunTotals::default();
        totals.absorb(&a);
        totals.absorb(&b);
        assert_eq!(totals.phases, 2);
        assert_eq!(totals.queries, 4);
        assert_eq!(totals.by_kind, [4, 0, 0, 0]);
        assert_eq!(totals.lookup_hits, 4);
        assert_eq!(totals.empty_lookups, 1);
        assert_eq!(totals.fingerprint, chain(chain(0, a.fingerprint), b.fingerprint));
    }

    #[test]
    fn chained_fingerprint_is_order_sensitive() {
        assert_ne!(chain(chain(0, 1), 2), chain(chain(0, 2), 1));
        // A repeated phase pair must not cancel to the empty value —
        // the reason the chain multiplies instead of XOR-ing.
        assert_ne!(chain(chain(0, 7), 7), 0);
    }
}
