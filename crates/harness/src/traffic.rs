//! Traffic generation: exact mix scheduling + concrete query synthesis.
//!
//! Scheduling and synthesis are split so each is testable on its own:
//! [`schedule`] turns mix ratios into an exact, deterministically
//! interleaved sequence of [`QueryKind`]s (pure arithmetic, no RNG), and
//! [`build_queries`] renders that sequence into [`Query`] values against a
//! concrete snapshot's label universe (all randomness from one keyed
//! [`ChaCha8Rng`] stream).

use ltee::serve::{EntityRef, KbSnapshot, Query};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::config::MixRatios;
use crate::zipf::ZipfSampler;

/// The four request kinds of the traffic mix, in canonical order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Exact label lookup.
    Exact,
    /// Fuzzy top-k lookup.
    Fuzzy,
    /// Entity record fetch.
    Fetch,
    /// Class listing page.
    Paging,
}

impl QueryKind {
    /// All kinds, the order used for tie-breaking and reporting.
    pub const ALL: [QueryKind; 4] =
        [QueryKind::Exact, QueryKind::Fuzzy, QueryKind::Fetch, QueryKind::Paging];

    /// Index into per-kind count arrays.
    pub fn index(self) -> usize {
        match self {
            QueryKind::Exact => 0,
            QueryKind::Fuzzy => 1,
            QueryKind::Fetch => 2,
            QueryKind::Paging => 3,
        }
    }

    /// Stable lowercase name, used as the report's JSON key.
    pub fn name(self) -> &'static str {
        match self {
            QueryKind::Exact => "exact",
            QueryKind::Fuzzy => "fuzzy",
            QueryKind::Fetch => "fetch",
            QueryKind::Paging => "paging",
        }
    }
}

/// Apportion `n` queries over the mix's weights into exact per-kind
/// counts (largest-remainder method: floors first, then the kinds with
/// the largest fractional parts absorb the remainder, ties broken in
/// [`QueryKind::ALL`] order).
pub fn apportion(mix: &MixRatios, n: usize) -> [usize; 4] {
    let weights = [mix.exact as u128, mix.fuzzy as u128, mix.fetch as u128, mix.paging as u128];
    let total: u128 = weights.iter().sum();
    assert!(total > 0, "mix ratios sum to zero (rejected by config validation)");

    let mut counts = [0usize; 4];
    // Exact integer arithmetic: quota numerator n * w over denominator
    // `total`; remainders compared without any float rounding.
    let mut remainders: Vec<(u128, usize)> = Vec::with_capacity(4);
    let mut assigned = 0usize;
    for (i, &w) in weights.iter().enumerate() {
        let numer = n as u128 * w;
        counts[i] = (numer / total) as usize;
        assigned += counts[i];
        remainders.push((numer % total, i));
    }
    // Largest remainder first; equal remainders resolve in kind order.
    remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for &(_, i) in remainders.iter().take(n - assigned) {
        counts[i] += 1;
    }
    counts
}

/// The exact query-kind sequence for `n` queries of the given mix.
///
/// Kinds are interleaved by virtual time: kind `k` with count `c` emits
/// its `j`-th query at time `(2j + 1) / 2c`, and the merged sequence is
/// sorted by time with ties broken in [`QueryKind::ALL`] order. A 1:1:1:1
/// mix therefore cycles `E F T P E F T P …`, and a 3:1 mix spreads the
/// minority kind evenly instead of clumping it at either end.
pub fn schedule(mix: &MixRatios, n: usize) -> Vec<QueryKind> {
    let counts = apportion(mix, n);
    let mut emitted = [0usize; 4];
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        // Next event per kind, as the exact rational (2j + 1) / 2c —
        // compared via cross-multiplication to stay float-free.
        let mut best: Option<(u128, u128, usize)> = None; // (numer, denom, kind)
        for (i, &c) in counts.iter().enumerate() {
            if emitted[i] >= c {
                continue;
            }
            let numer = (2 * emitted[i] + 1) as u128;
            let denom = (2 * c) as u128;
            let earlier = match best {
                None => true,
                Some((bn, bd, _)) => numer * bd < bn * denom,
            };
            if earlier {
                best = Some((numer, denom, i));
            }
        }
        let (_, _, i) = best.expect("counts sum to n");
        emitted[i] += 1;
        out.push(QueryKind::ALL[i]);
    }
    out
}

/// One entry of the queryable label universe.
#[derive(Debug, Clone)]
pub struct UniverseEntry {
    /// The served entity.
    pub entity: EntityRef,
    /// Its canonical label.
    pub label: String,
    /// Popularity proxy: supporting web table rows.
    pub rows: usize,
}

/// The snapshot's served labels, popularity-ranked (hottest first) so a
/// [`ZipfSampler`] rank maps straight onto an entry.
#[derive(Debug, Clone)]
pub struct LabelUniverse {
    /// Entries sorted by descending row support; ties keep snapshot
    /// iteration order (class order, then record id), so the ranking is
    /// deterministic.
    pub entries: Vec<UniverseEntry>,
}

impl LabelUniverse {
    /// Rank the snapshot's entities by row support.
    pub fn from_snapshot(snap: &KbSnapshot) -> Self {
        let mut entries = Vec::new();
        for class in snap.classes() {
            for (id, record) in class.records().iter().enumerate() {
                entries.push(UniverseEntry {
                    entity: EntityRef { class: class.class(), id: id as u32 },
                    label: record.canonical_label().to_string(),
                    rows: record.rows.len(),
                });
            }
        }
        entries.sort_by_key(|e| std::cmp::Reverse(e.rows));
        Self { entries }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entity is served yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Drop one character of `label` at an RNG-chosen position — the
/// canonical "typo" probe for fuzzy lookups (single-char labels pass
/// through unchanged).
fn mangle(label: &str, rng: &mut ChaCha8Rng) -> String {
    let chars: Vec<char> = label.chars().collect();
    if chars.len() < 2 {
        return label.to_string();
    }
    let drop = rng.gen_range(0..chars.len());
    chars.iter().enumerate().filter(|&(i, _)| i != drop).map(|(_, c)| c).collect()
}

/// Render a kind sequence into concrete queries against `snap`.
///
/// Labels are drawn zipfian-skewed from the universe; per-query noise
/// (class restriction, typo position, page offset) comes from the one
/// `rng` stream, so the whole batch is a pure function of
/// `(snapshot, schedule, zipf, rng state)`.
pub fn build_queries(
    snap: &KbSnapshot,
    kinds: &[QueryKind],
    universe: &LabelUniverse,
    zipf: &ZipfSampler,
    rng: &mut ChaCha8Rng,
    fuzzy_k: usize,
    page_limit: usize,
) -> Vec<Query> {
    assert!(!universe.is_empty(), "query phases run only after a non-empty publish");
    let mut queries = Vec::with_capacity(kinds.len());
    for &kind in kinds {
        let entry = &universe.entries[zipf.sample(rng)];
        let class_filter =
            if rng.gen_bool(0.5) { Some(entry.entity.class) } else { None };
        queries.push(match kind {
            QueryKind::Exact => {
                Query::Exact { class: class_filter, label: entry.label.clone() }
            }
            QueryKind::Fuzzy => Query::Fuzzy {
                class: class_filter,
                label: mangle(&entry.label, rng),
                k: fuzzy_k,
            },
            QueryKind::Fetch => Query::Entity { entity: entry.entity },
            QueryKind::Paging => {
                let class = entry.entity.class;
                let total =
                    snap.class(class).map(|c| c.len()).unwrap_or(0);
                let offset = if total == 0 { 0 } else { rng.gen_range(0..total) };
                Query::List { class, offset, limit: page_limit }
            }
        });
    }
    queries
}

#[cfg(test)]
mod tests {
    use super::*;
    use QueryKind::*;

    fn mix(exact: u32, fuzzy: u32, fetch: u32, paging: u32) -> MixRatios {
        MixRatios { exact, fuzzy, fetch, paging }
    }

    #[test]
    fn apportionment_is_exact() {
        // Counts always sum to n, whatever the rounding pressure.
        for n in [1usize, 2, 3, 7, 10, 97, 1000] {
            for m in [mix(1, 1, 1, 1), mix(40, 30, 20, 10), mix(3, 1, 0, 0), mix(0, 0, 0, 5)] {
                let counts = apportion(&m, n);
                assert_eq!(counts.iter().sum::<usize>(), n, "mix {m:?}, n {n}");
            }
        }
        // Known answers.
        assert_eq!(apportion(&mix(1, 1, 1, 1), 8), [2, 2, 2, 2]);
        assert_eq!(apportion(&mix(40, 30, 20, 10), 10), [4, 3, 2, 1]);
        assert_eq!(apportion(&mix(3, 1, 0, 0), 4), [3, 1, 0, 0]);
        // 5 queries over 1:1:1:1 — one kind gets the extra; remainders tie
        // so kind order decides: exact wins.
        assert_eq!(apportion(&mix(1, 1, 1, 1), 5), [2, 1, 1, 1]);
        // Zero-weight kinds never receive queries.
        assert_eq!(apportion(&mix(0, 0, 0, 5), 7), [0, 0, 0, 7]);
    }

    #[test]
    fn schedule_interleaves_evenly() {
        // Balanced mix cycles through the kinds.
        assert_eq!(
            schedule(&mix(1, 1, 1, 1), 8),
            vec![Exact, Fuzzy, Fetch, Paging, Exact, Fuzzy, Fetch, Paging]
        );
        // 3:1 spreads the minority kind into the middle, not the ends:
        // exact fires at 1/6, 3/6, 5/6; fuzzy at 3/6 — the tie at 3/6
        // resolves to exact (kind order).
        assert_eq!(schedule(&mix(3, 1, 0, 0), 4), vec![Exact, Exact, Fuzzy, Exact]);
        // Single-kind mixes degenerate to a run.
        assert_eq!(schedule(&mix(0, 2, 0, 0), 2), vec![Fuzzy, Fuzzy]);
    }

    #[test]
    fn schedule_matches_apportionment() {
        let m = mix(40, 30, 20, 10);
        let kinds = schedule(&m, 97);
        let counts = apportion(&m, 97);
        for kind in QueryKind::ALL {
            let seen = kinds.iter().filter(|&&k| k == kind).count();
            assert_eq!(seen, counts[kind.index()], "{kind:?}");
        }
    }

    #[test]
    fn mangle_drops_exactly_one_char() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        for label in ["Zürich", "ab", "İstanbul"] {
            let mangled = mangle(label, &mut rng);
            assert_eq!(mangled.chars().count(), label.chars().count() - 1, "{label}");
        }
        // Single-char labels survive unchanged.
        assert_eq!(mangle("x", &mut rng), "x");
    }
}
