//! CLI entry point: `cargo run -p ltee-harness -- --workload steady-read --seed 42`.

use std::process::ExitCode;
use std::time::Instant;

use ltee::prelude::Parallelism;
use ltee_harness::{named_workload, run, workload_names, WORKLOADS};

const USAGE: &str = "\
ltee-harness — deterministic workload runner over the serve pipeline

USAGE:
    ltee-harness --workload <name> [--seed <n>] [--out <path>] [--threads <n>] [--check]
    ltee-harness --list

OPTIONS:
    --workload <name>  named workload to run (see --list)
    --seed <n>         master seed (default 42)
    --out <path>       report path (default BENCH_harness.json)
    --threads <n>      pin the worker pool (default: LTEE_NUM_THREADS / auto);
                       never affects the report bytes
    --check            do not write: re-run and compare against the existing
                       report, exit 1 on any byte difference
    --list             list the named workloads
";

struct Args {
    workload: Option<String>,
    seed: u64,
    out: String,
    threads: Option<usize>,
    check: bool,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workload: None,
        seed: 42,
        out: "BENCH_harness.json".to_string(),
        threads: None,
        check: false,
        list: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |flag: &str| {
            argv.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--workload" => args.workload = Some(value("--workload")?),
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--out" => args.out = value("--out")?,
            "--threads" => {
                args.threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?,
                );
            }
            "--check" => args.check = true,
            "--list" => args.list = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("error: {message}\n");
            }
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if args.list {
        println!("named workloads:");
        for (name, description) in WORKLOADS {
            println!("  {name:<20} {description}");
        }
        return ExitCode::SUCCESS;
    }

    let Some(name) = args.workload else {
        eprintln!("error: --workload is required (or --list)\n");
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let Some(config) = named_workload(&name, args.seed) else {
        eprintln!("error: unknown workload `{name}` — known: {}", workload_names().join(", "));
        return ExitCode::from(2);
    };

    if let Some(threads) = args.threads {
        Parallelism::Threads(threads).install();
    }

    let started = Instant::now();
    let report = match run(&config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: invalid config: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rendered = report.render();
    println!("harness: run finished in {:.3} s", started.elapsed().as_secs_f64());

    if args.check {
        return match std::fs::read_to_string(&args.out) {
            Ok(existing) if existing == rendered => {
                println!("harness: {} is canonical ({} bytes)", args.out, rendered.len());
                ExitCode::SUCCESS
            }
            Ok(_) => {
                eprintln!(
                    "error: {} differs from a fresh `{name}` run at seed {} — \
                     the report is stale or non-canonical",
                    args.out, args.seed
                );
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", args.out);
                ExitCode::FAILURE
            }
        };
    }

    if let Err(e) = std::fs::write(&args.out, &rendered) {
        eprintln!("error: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("harness: wrote {} ({} bytes)", args.out, rendered.len());
    ExitCode::SUCCESS
}
