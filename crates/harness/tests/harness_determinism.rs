//! The harness's headline contract: `BENCH_harness.json` is a pure
//! function of `(workload, seed)` — byte-identical across repeated runs
//! and across worker thread counts. The vendored pool shim allows
//! re-pinning the global thread count mid-process, so one test can compare
//! `Threads(1)` and `Threads(4)` runs directly.

use ltee::prelude::Parallelism;
use ltee_harness::{named_workload, run};

/// A shrunk config so three full runs stay fast in debug CI.
fn small_config(name: &str, seed: u64) -> ltee_harness::HarnessConfig {
    let mut config = named_workload(name, seed).expect("named workload");
    config.queries_per_phase = 40;
    config
}

#[test]
fn report_bytes_are_identical_across_runs_and_thread_counts() {
    let config = small_config("steady-read", 7);

    Parallelism::Threads(1).install();
    let first = run(&config).expect("valid config").render();
    let second = run(&config).expect("valid config").render();
    assert_eq!(first, second, "same config + seed must render identical bytes");

    Parallelism::Threads(4).install();
    let parallel = run(&config).expect("valid config").render();
    assert_eq!(
        first, parallel,
        "thread count leaked into the report — it must never affect the bytes"
    );
    Parallelism::Auto.install();
}

#[test]
fn churn_and_soak_reports_are_thread_count_invariant() {
    // The churn phase runs real OS threads; its nondeterministic
    // observations must be distilled to invariants before reaching the
    // report. A shrunk ingest-soak config exercises churn AND soak.
    let mut config = small_config("ingest-soak", 11);
    config.batches = 2;
    config.soak_rounds = 1;
    config.churn_readers = 2;

    Parallelism::Threads(1).install();
    let sequential = run(&config).expect("valid config").render();
    Parallelism::Threads(4).install();
    let parallel = run(&config).expect("valid config").render();
    assert_eq!(sequential, parallel);
    Parallelism::Auto.install();

    // The invariants themselves must hold (not just render stably).
    assert!(sequential.contains("\"versions_monotonic\": true"));
    assert!(sequential.contains("\"replay_identical\": true"));
}

#[test]
fn different_seeds_produce_different_traffic() {
    Parallelism::Threads(1).install();
    let a = run(&small_config("steady-read", 1)).expect("valid config").render();
    let b = run(&small_config("steady-read", 2)).expect("valid config").render();
    Parallelism::Auto.install();
    assert_ne!(a, b, "the seed must actually steer corpus + traffic");
}
