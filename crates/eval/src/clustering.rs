//! Clustering evaluation following Hassanzadeh et al. (paper Section 3.2).

use std::collections::{HashMap, HashSet};

use ltee_webtables::RowRef;
use serde::{Deserialize, Serialize};

use crate::f1;

/// Result of evaluating a clustering against the gold clusters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusteringEvaluation {
    /// Penalised clustering precision (PCP).
    pub penalized_precision: f64,
    /// Average recall (AR) over the gold clusters.
    pub average_recall: f64,
    /// F1 of the two.
    pub f1: f64,
    /// Number of produced clusters.
    pub produced_clusters: usize,
    /// Number of gold clusters.
    pub gold_clusters: usize,
}

/// Evaluate produced clusters `c` against gold clusters `g`.
///
/// * A produced cluster is mapped to the gold cluster from which it contains
///   the highest fraction of rows (ties broken by the absolute overlap).
/// * **Average recall**: for each gold cluster, the fraction of its rows
///   contained in the produced cluster mapped to it (0 if none mapped).
/// * **Clustering precision**: the fraction of same-produced-cluster row
///   pairs that are also same-gold-cluster pairs; clusters of size one count
///   as correct pairs of size one (so that singleton-heavy clusterings are
///   not unfairly advantaged or penalised).
/// * **Penalty**: the precision is multiplied by
///   `min(|C|, |G|, |M|) / max(|C|, |G|, |M|)` where `M` is the number of
///   mapped cluster pairs — deviations from the correct number of clusters
///   are punished.
pub fn evaluate_clustering(produced: &[Vec<RowRef>], gold: &[Vec<RowRef>]) -> ClusteringEvaluation {
    let gold_of_row: HashMap<RowRef, usize> = gold
        .iter()
        .enumerate()
        .flat_map(|(gi, rows)| rows.iter().map(move |r| (*r, gi)))
        .collect();

    // Map each produced cluster to a gold cluster.
    let mut mapping: HashMap<usize, usize> = HashMap::new();
    for (ci, rows) in produced.iter().enumerate() {
        if rows.is_empty() {
            continue;
        }
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for row in rows {
            if let Some(&gi) = gold_of_row.get(row) {
                *counts.entry(gi).or_insert(0) += 1;
            }
        }
        if let Some((&gi, _)) = counts.iter().max_by(|a, b| {
            let frac_a = *a.1 as f64 / rows.len() as f64;
            let frac_b = *b.1 as f64 / rows.len() as f64;
            frac_a.partial_cmp(&frac_b).unwrap_or(std::cmp::Ordering::Equal).then(a.1.cmp(b.1))
        }) {
            mapping.insert(ci, gi);
        }
    }

    // A gold cluster may be targeted by several produced clusters; for
    // recall, use the best mapped produced cluster per gold cluster.
    let mut best_for_gold: HashMap<usize, usize> = HashMap::new();
    for (&ci, &gi) in &mapping {
        let overlap = produced[ci].iter().filter(|r| gold_of_row.get(r) == Some(&gi)).count();
        let current_best = best_for_gold
            .get(&gi)
            .map(|&prev| produced[prev].iter().filter(|r| gold_of_row.get(r) == Some(&gi)).count())
            .unwrap_or(0);
        if overlap > current_best {
            best_for_gold.insert(gi, ci);
        }
    }

    // Average recall.
    let mut recall_sum = 0.0;
    for (gi, rows) in gold.iter().enumerate() {
        if rows.is_empty() {
            continue;
        }
        let recall = match best_for_gold.get(&gi) {
            Some(&ci) => {
                let gold_rows: HashSet<&RowRef> = rows.iter().collect();
                produced[ci].iter().filter(|r| gold_rows.contains(r)).count() as f64 / rows.len() as f64
            }
            None => 0.0,
        };
        recall_sum += recall;
    }
    let non_empty_gold = gold.iter().filter(|g| !g.is_empty()).count();
    let average_recall = if non_empty_gold == 0 { 0.0 } else { recall_sum / non_empty_gold as f64 };

    // Pairwise clustering precision.
    let mut correct_pairs = 0usize;
    let mut total_pairs = 0usize;
    for rows in produced {
        if rows.is_empty() {
            continue;
        }
        if rows.len() == 1 {
            // A singleton is a trivially correct "pair".
            total_pairs += 1;
            correct_pairs += 1;
            continue;
        }
        for i in 0..rows.len() {
            for j in (i + 1)..rows.len() {
                total_pairs += 1;
                if let (Some(a), Some(b)) = (gold_of_row.get(&rows[i]), gold_of_row.get(&rows[j])) {
                    if a == b {
                        correct_pairs += 1;
                    }
                }
            }
        }
    }
    let precision = if total_pairs == 0 { 0.0 } else { correct_pairs as f64 / total_pairs as f64 };

    // Penalty for deviating from the correct number of clusters.
    let produced_count = produced.iter().filter(|c| !c.is_empty()).count();
    let mapped_count = mapping.len();
    let sizes = [produced_count, non_empty_gold, mapped_count];
    let min = *sizes.iter().min().unwrap_or(&0) as f64;
    let max = *sizes.iter().max().unwrap_or(&1) as f64;
    let penalty = if max <= 0.0 { 0.0 } else { min / max };
    let penalized_precision = precision * penalty;

    ClusteringEvaluation {
        penalized_precision,
        average_recall,
        f1: f1(penalized_precision, average_recall),
        produced_clusters: produced_count,
        gold_clusters: non_empty_gold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltee_webtables::TableId;

    fn r(t: u64, row: usize) -> RowRef {
        RowRef::new(TableId(t), row)
    }

    #[test]
    fn perfect_clustering_scores_one() {
        let gold = vec![vec![r(1, 0), r(2, 0)], vec![r(3, 0)], vec![r(4, 0), r(5, 0), r(6, 0)]];
        let eval = evaluate_clustering(&gold, &gold);
        assert!((eval.penalized_precision - 1.0).abs() < 1e-12);
        assert!((eval.average_recall - 1.0).abs() < 1e-12);
        assert!((eval.f1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn over_merging_reduces_precision() {
        let gold = vec![vec![r(1, 0), r(2, 0)], vec![r(3, 0), r(4, 0)]];
        let produced = vec![vec![r(1, 0), r(2, 0), r(3, 0), r(4, 0)]];
        let eval = evaluate_clustering(&produced, &gold);
        assert!(eval.penalized_precision < 0.5, "pcp {}", eval.penalized_precision);
        assert!(eval.average_recall <= 1.0);
        assert!(eval.f1 < 0.8);
    }

    #[test]
    fn over_splitting_reduces_recall_and_is_penalised() {
        let gold = vec![vec![r(1, 0), r(2, 0), r(3, 0), r(4, 0)]];
        let produced = vec![vec![r(1, 0)], vec![r(2, 0)], vec![r(3, 0)], vec![r(4, 0)]];
        let eval = evaluate_clustering(&produced, &gold);
        assert!(eval.average_recall < 0.5);
        assert!(eval.penalized_precision < 0.5, "penalty should kick in: {}", eval.penalized_precision);
    }

    #[test]
    fn unknown_rows_count_as_wrong_pairs() {
        let gold = vec![vec![r(1, 0), r(2, 0)]];
        let produced = vec![vec![r(1, 0), r(2, 0), r(9, 9)]];
        let eval = evaluate_clustering(&produced, &gold);
        assert!(eval.penalized_precision < 1.0);
        assert!((eval.average_recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        let eval = evaluate_clustering(&[], &[]);
        assert_eq!(eval.f1, 0.0);
        let gold = vec![vec![r(1, 0)]];
        let eval = evaluate_clustering(&[], &gold);
        assert_eq!(eval.average_recall, 0.0);
    }

    #[test]
    fn partially_correct_clustering_between_zero_and_one() {
        let gold = vec![vec![r(1, 0), r(2, 0), r(3, 0)], vec![r(4, 0), r(5, 0)]];
        let produced = vec![vec![r(1, 0), r(2, 0)], vec![r(3, 0), r(4, 0), r(5, 0)]];
        let eval = evaluate_clustering(&produced, &gold);
        assert!(eval.f1 > 0.3 && eval.f1 < 1.0, "f1 {}", eval.f1);
    }
}
