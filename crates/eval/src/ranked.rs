//! Ranked evaluation (MAP@k, P@k) used for the set-expansion comparison in
//! paper Section 6.

use serde::{Deserialize, Serialize};

/// Summary of a ranked evaluation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankedEvaluation {
    /// Mean average precision with the given cut-off.
    pub map: f64,
    /// Precision at 5.
    pub p_at_5: f64,
    /// Precision at 20.
    pub p_at_20: f64,
    /// The cut-off used for MAP.
    pub cutoff: usize,
}

impl RankedEvaluation {
    /// Evaluate a ranked list of correctness flags (best-ranked first) with
    /// the paper's cut-off of 256.
    pub fn from_ranked(ranked_correct: &[bool]) -> Self {
        let cutoff = 256;
        Self {
            map: average_precision(ranked_correct, cutoff),
            p_at_5: precision_at_k(ranked_correct, 5),
            p_at_20: precision_at_k(ranked_correct, 20),
            cutoff,
        }
    }
}

/// Average precision of a ranked list of correctness flags, with a cut-off.
///
/// `AP = (1 / R) * Σ_k P(k) * rel(k)` where `R` is the number of relevant
/// items within the cut-off and `P(k)` is the precision at rank `k`.
pub fn average_precision(ranked_correct: &[bool], cutoff: usize) -> f64 {
    let considered = &ranked_correct[..ranked_correct.len().min(cutoff)];
    let relevant = considered.iter().filter(|&&c| c).count();
    if relevant == 0 {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (i, &correct) in considered.iter().enumerate() {
        if correct {
            hits += 1;
            sum += hits as f64 / (i + 1) as f64;
        }
    }
    sum / relevant as f64
}

/// Precision within the top `k` of a ranked list of correctness flags.
pub fn precision_at_k(ranked_correct: &[bool], k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let considered = &ranked_correct[..ranked_correct.len().min(k)];
    if considered.is_empty() {
        return 0.0;
    }
    considered.iter().filter(|&&c| c).count() as f64 / considered.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_correct_is_perfect() {
        let ranked = vec![true; 30];
        assert_eq!(average_precision(&ranked, 256), 1.0);
        assert_eq!(precision_at_k(&ranked, 5), 1.0);
        assert_eq!(precision_at_k(&ranked, 20), 1.0);
    }

    #[test]
    fn all_wrong_is_zero() {
        let ranked = vec![false; 30];
        assert_eq!(average_precision(&ranked, 256), 0.0);
        assert_eq!(precision_at_k(&ranked, 5), 0.0);
    }

    #[test]
    fn early_correct_results_boost_average_precision() {
        let early = vec![true, true, false, false, false, false];
        let late = vec![false, false, false, false, true, true];
        assert!(average_precision(&early, 256) > average_precision(&late, 256));
    }

    #[test]
    fn precision_at_k_truncates() {
        let ranked = vec![true, false, true, false];
        assert_eq!(precision_at_k(&ranked, 2), 0.5);
        assert_eq!(precision_at_k(&ranked, 100), 0.5);
        assert_eq!(precision_at_k(&[], 5), 0.0);
        assert_eq!(precision_at_k(&ranked, 0), 0.0);
    }

    #[test]
    fn cutoff_limits_map_computation() {
        let mut ranked = vec![false; 300];
        ranked[299] = true; // beyond the 256 cut-off
        assert_eq!(average_precision(&ranked, 256), 0.0);
    }

    #[test]
    fn from_ranked_fills_all_fields() {
        let ranked = vec![true, false, true, true, false, true];
        let eval = RankedEvaluation::from_ranked(&ranked);
        assert!(eval.map > 0.0 && eval.map <= 1.0);
        assert_eq!(eval.p_at_5, 0.6);
        assert_eq!(eval.cutoff, 256);
    }

    #[test]
    fn classic_example_value() {
        // AP of [1, 0, 1]: (1/1 + 2/3) / 2 = 0.8333…
        let ranked = vec![true, false, true];
        assert!((average_precision(&ranked, 256) - 5.0 / 6.0).abs() < 1e-12);
    }
}
