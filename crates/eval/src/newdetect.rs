//! Evaluation of the new detection component (paper Table 8).

use ltee_kb::InstanceId;
use ltee_newdetect::NewDetectionOutcome;
use serde::{Deserialize, Serialize};

use crate::f1;

/// Ground truth for one evaluated entity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EntityTruth {
    /// Whether the entity truly describes a new instance.
    pub is_new: bool,
    /// The knowledge base instance the entity truly corresponds to (for
    /// existing entities).
    pub instance: Option<InstanceId>,
}

/// Evaluation result of the new detection component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NewDetectionEvaluation {
    /// Fraction of entities classified correctly (existing entities must
    /// additionally be matched to the correct instance).
    pub accuracy: f64,
    /// F1 of the "existing" classification (correct instance required).
    pub f1_existing: f64,
    /// F1 of the "new" classification.
    pub f1_new: f64,
    /// Number of evaluated entities.
    pub evaluated: usize,
}

/// Evaluate predicted outcomes against the per-entity ground truth.
pub fn evaluate_new_detection(
    predicted: &[NewDetectionOutcome],
    truth: &[EntityTruth],
) -> NewDetectionEvaluation {
    assert_eq!(predicted.len(), truth.len(), "one truth entry per prediction");
    if predicted.is_empty() {
        return NewDetectionEvaluation { accuracy: 0.0, f1_existing: 0.0, f1_new: 0.0, evaluated: 0 };
    }

    let mut correct = 0usize;
    // New side.
    let mut tp_new = 0usize;
    let mut fp_new = 0usize;
    let mut fn_new = 0usize;
    // Existing side (correct instance required for a true positive).
    let mut tp_existing = 0usize;
    let mut fp_existing = 0usize;
    let mut fn_existing = 0usize;

    for (p, t) in predicted.iter().zip(truth.iter()) {
        let correctly_classified = match p {
            NewDetectionOutcome::New => t.is_new,
            NewDetectionOutcome::Existing(id) => !t.is_new && Some(*id) == t.instance,
        };
        if correctly_classified {
            correct += 1;
        }
        match (p.is_new(), t.is_new) {
            (true, true) => tp_new += 1,
            (true, false) => {
                fp_new += 1;
                fn_existing += 1;
            }
            (false, true) => {
                fn_new += 1;
                fp_existing += 1;
            }
            (false, false) => {
                if correctly_classified {
                    tp_existing += 1;
                } else {
                    // Linked to the wrong instance: a false positive for the
                    // existing side and a miss of the correct link.
                    fp_existing += 1;
                    fn_existing += 1;
                }
            }
        }
    }

    let precision_new = if tp_new + fp_new == 0 { 0.0 } else { tp_new as f64 / (tp_new + fp_new) as f64 };
    let recall_new = if tp_new + fn_new == 0 { 0.0 } else { tp_new as f64 / (tp_new + fn_new) as f64 };
    let precision_existing = if tp_existing + fp_existing == 0 {
        0.0
    } else {
        tp_existing as f64 / (tp_existing + fp_existing) as f64
    };
    let recall_existing = if tp_existing + fn_existing == 0 {
        0.0
    } else {
        tp_existing as f64 / (tp_existing + fn_existing) as f64
    };

    NewDetectionEvaluation {
        accuracy: correct as f64 / predicted.len() as f64,
        f1_existing: f1(precision_existing, recall_existing),
        f1_new: f1(precision_new, recall_new),
        evaluated: predicted.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn new_truth() -> EntityTruth {
        EntityTruth { is_new: true, instance: None }
    }

    fn existing_truth(id: u64) -> EntityTruth {
        EntityTruth { is_new: false, instance: Some(InstanceId(id)) }
    }

    #[test]
    fn perfect_predictions_score_one() {
        let predicted = vec![
            NewDetectionOutcome::New,
            NewDetectionOutcome::Existing(InstanceId(1)),
            NewDetectionOutcome::Existing(InstanceId(2)),
        ];
        let truth = vec![new_truth(), existing_truth(1), existing_truth(2)];
        let eval = evaluate_new_detection(&predicted, &truth);
        assert_eq!(eval.accuracy, 1.0);
        assert_eq!(eval.f1_existing, 1.0);
        assert_eq!(eval.f1_new, 1.0);
    }

    #[test]
    fn wrong_instance_counts_against_existing_even_if_not_new() {
        let predicted = vec![NewDetectionOutcome::Existing(InstanceId(9))];
        let truth = vec![existing_truth(1)];
        let eval = evaluate_new_detection(&predicted, &truth);
        assert_eq!(eval.accuracy, 0.0);
        assert_eq!(eval.f1_existing, 0.0);
    }

    #[test]
    fn misclassifying_existing_as_new_hurts_both_sides() {
        let predicted = vec![NewDetectionOutcome::New, NewDetectionOutcome::New];
        let truth = vec![existing_truth(1), new_truth()];
        let eval = evaluate_new_detection(&predicted, &truth);
        assert_eq!(eval.accuracy, 0.5);
        assert!(eval.f1_new < 1.0);
        assert_eq!(eval.f1_existing, 0.0);
    }

    #[test]
    fn missing_new_entities_hurts_new_recall() {
        let predicted = vec![NewDetectionOutcome::Existing(InstanceId(1)), NewDetectionOutcome::New];
        let truth = vec![new_truth(), new_truth()];
        let eval = evaluate_new_detection(&predicted, &truth);
        assert!(eval.f1_new > 0.0 && eval.f1_new < 1.0);
    }

    #[test]
    fn empty_input() {
        let eval = evaluate_new_detection(&[], &[]);
        assert_eq!(eval.evaluated, 0);
        assert_eq!(eval.accuracy, 0.0);
    }

    #[test]
    #[should_panic(expected = "one truth entry per prediction")]
    fn mismatched_lengths_panic() {
        evaluate_new_detection(&[NewDetectionOutcome::New], &[]);
    }
}
