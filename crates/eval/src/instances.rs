//! "New instances found" evaluation (paper Section 4.1, Table 9).

use std::collections::{HashMap, HashSet};

use ltee_fusion::Entity;
use ltee_newdetect::NewDetectionOutcome;
use ltee_webtables::{GoldStandard, RowRef};
use serde::{Deserialize, Serialize};

use crate::f1;

/// Result of the new-instances-found evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NewInstancesEvaluation {
    /// Precision: fraction of entities returned as new that correctly match
    /// a new instance of the gold standard.
    pub precision: f64,
    /// Recall: fraction of new instances in the gold standard for which a
    /// correct entity was returned.
    pub recall: f64,
    /// F1 of the two.
    pub f1: f64,
    /// Number of entities the system returned as new.
    pub returned_new: usize,
    /// Number of new instances in the gold standard.
    pub gold_new: usize,
}

/// Map an entity to the gold cluster it represents, if any.
///
/// Paper Section 4.1: "a majority of the rows of an entity must correspond
/// to the same new instance in the gold standard, while at the same time the
/// entity must also contain the majority of the rows that actually describe
/// that instance."
pub fn entity_gold_cluster(entity_rows: &[RowRef], gold: &GoldStandard) -> Option<usize> {
    if entity_rows.is_empty() {
        return None;
    }
    let mut counts: HashMap<usize, usize> = HashMap::new();
    for row in entity_rows {
        if let Some(ci) = gold.cluster_of_row(*row) {
            *counts.entry(ci).or_insert(0) += 1;
        }
    }
    let (&best_cluster, &overlap) = counts.iter().max_by_key(|(_, &c)| c)?;
    // Majority of the entity's rows belong to that cluster…
    if overlap * 2 <= entity_rows.len() {
        return None;
    }
    // …and the entity contains the majority of the cluster's rows.
    let cluster_size = gold.clusters[best_cluster].rows.len();
    if overlap * 2 <= cluster_size {
        return None;
    }
    Some(best_cluster)
}

/// Evaluate how well new instances were found.
///
/// `entities` and `outcomes` are parallel (one outcome per created entity).
pub fn evaluate_new_instances(
    entities: &[Entity],
    outcomes: &[NewDetectionOutcome],
    gold: &GoldStandard,
) -> NewInstancesEvaluation {
    assert_eq!(entities.len(), outcomes.len(), "one outcome per entity");
    let gold_new: HashSet<usize> = gold
        .clusters
        .iter()
        .enumerate()
        .filter(|(_, c)| c.is_new)
        .map(|(i, _)| i)
        .collect();

    let mut correctly_found: HashSet<usize> = HashSet::new();
    let mut returned_new = 0usize;
    let mut correct_returns = 0usize;
    for (entity, outcome) in entities.iter().zip(outcomes.iter()) {
        if !outcome.is_new() {
            continue;
        }
        returned_new += 1;
        if let Some(cluster) = entity_gold_cluster(&entity.rows, gold) {
            if gold_new.contains(&cluster) {
                correct_returns += 1;
                correctly_found.insert(cluster);
            }
        }
    }

    let precision = if returned_new == 0 { 0.0 } else { correct_returns as f64 / returned_new as f64 };
    let recall = if gold_new.is_empty() { 0.0 } else { correctly_found.len() as f64 / gold_new.len() as f64 };
    NewInstancesEvaluation {
        precision,
        recall,
        f1: f1(precision, recall),
        returned_new,
        gold_new: gold_new.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltee_kb::{ClassKey, EntityId, InstanceId};
    use ltee_webtables::{GoldCluster, TableId};

    fn r(t: u64, row: usize) -> RowRef {
        RowRef::new(TableId(t), row)
    }

    fn gold_with(clusters: Vec<(Vec<RowRef>, bool)>) -> GoldStandard {
        GoldStandard {
            class: ClassKey::Song,
            tables: vec![],
            clusters: clusters
                .into_iter()
                .enumerate()
                .map(|(i, (rows, is_new))| GoldCluster {
                    entity: EntityId(i as u64),
                    rows,
                    is_new,
                    is_target_class: true,
                    kb_instance: if is_new { None } else { Some(InstanceId(i as u64)) },
                    homonym_group: i as u64,
                })
                .collect(),
            attributes: vec![],
            facts: vec![],
        }
    }

    fn entity(rows: Vec<RowRef>) -> Entity {
        Entity { class: ClassKey::Song, rows, labels: vec!["x".into()], facts: vec![] }
    }

    #[test]
    fn perfect_system_scores_one() {
        let gold = gold_with(vec![
            (vec![r(1, 0), r(2, 0)], true),
            (vec![r(3, 0)], true),
            (vec![r(4, 0), r(5, 0)], false),
        ]);
        let entities = vec![
            entity(vec![r(1, 0), r(2, 0)]),
            entity(vec![r(3, 0)]),
            entity(vec![r(4, 0), r(5, 0)]),
        ];
        let outcomes = vec![
            NewDetectionOutcome::New,
            NewDetectionOutcome::New,
            NewDetectionOutcome::Existing(InstanceId(2)),
        ];
        let eval = evaluate_new_instances(&entities, &outcomes, &gold);
        assert_eq!(eval.precision, 1.0);
        assert_eq!(eval.recall, 1.0);
        assert_eq!(eval.f1, 1.0);
    }

    #[test]
    fn existing_entity_classified_new_hurts_precision() {
        let gold = gold_with(vec![(vec![r(1, 0)], true), (vec![r(2, 0)], false)]);
        let entities = vec![entity(vec![r(1, 0)]), entity(vec![r(2, 0)])];
        let outcomes = vec![NewDetectionOutcome::New, NewDetectionOutcome::New];
        let eval = evaluate_new_instances(&entities, &outcomes, &gold);
        assert_eq!(eval.precision, 0.5);
        assert_eq!(eval.recall, 1.0);
    }

    #[test]
    fn missed_new_instance_hurts_recall() {
        let gold = gold_with(vec![(vec![r(1, 0)], true), (vec![r(2, 0)], true)]);
        let entities = vec![entity(vec![r(1, 0)]), entity(vec![r(2, 0)])];
        let outcomes = vec![NewDetectionOutcome::New, NewDetectionOutcome::Existing(InstanceId(0))];
        let eval = evaluate_new_instances(&entities, &outcomes, &gold);
        assert_eq!(eval.recall, 0.5);
        assert_eq!(eval.precision, 1.0);
    }

    #[test]
    fn badly_clustered_entity_does_not_count() {
        // The entity mixes rows of two clusters: no majority mapping.
        let gold = gold_with(vec![(vec![r(1, 0), r(1, 1)], true), (vec![r(2, 0), r(2, 1)], true)]);
        let entities = vec![entity(vec![r(1, 0), r(2, 0)])];
        let outcomes = vec![NewDetectionOutcome::New];
        let eval = evaluate_new_instances(&entities, &outcomes, &gold);
        assert_eq!(eval.precision, 0.0);
        assert_eq!(eval.recall, 0.0);
    }

    #[test]
    fn entity_missing_majority_of_cluster_rows_does_not_count() {
        let gold = gold_with(vec![(vec![r(1, 0), r(2, 0), r(3, 0), r(4, 0)], true)]);
        let entities = vec![entity(vec![r(1, 0)])];
        let outcomes = vec![NewDetectionOutcome::New];
        let eval = evaluate_new_instances(&entities, &outcomes, &gold);
        assert_eq!(eval.recall, 0.0);
    }

    #[test]
    fn entity_gold_cluster_majority_mapping() {
        let gold = gold_with(vec![(vec![r(1, 0), r(2, 0), r(3, 0)], true)]);
        assert_eq!(entity_gold_cluster(&[r(1, 0), r(2, 0)], &gold), Some(0));
        assert_eq!(entity_gold_cluster(&[r(9, 9)], &gold), None);
        assert_eq!(entity_gold_cluster(&[], &gold), None);
    }
}
