//! # ltee-eval
//!
//! The evaluation framework: every measure the paper reports.
//!
//! * [`clustering`] — the Hassanzadeh et al. clustering evaluation used for
//!   Table 7: a one-to-one mapping between produced and gold clusters,
//!   average recall, pairwise clustering precision penalised by the
//!   deviation of the cluster count, and their F1.
//! * [`newdetect`] — accuracy and per-side F1 (existing / new) of the new
//!   detection component (Table 8).
//! * [`instances`] — the "new instances found" precision / recall / F1 of
//!   the end-to-end system (Table 9).
//! * [`facts`] — the "facts found" F1 of the fused descriptions (Table 10)
//!   and the fact accuracy used in the large-scale profiling (Table 11).
//! * [`ranked`] — MAP@k and precision@k used for the set-expansion
//!   comparison in Section 6.

pub mod clustering;
pub mod facts;
pub mod instances;
pub mod newdetect;
pub mod ranked;

pub use clustering::{evaluate_clustering, ClusteringEvaluation};
pub use facts::{evaluate_facts, fact_accuracy_against_world, FactsEvaluation};
pub use instances::{evaluate_new_instances, NewInstancesEvaluation};
pub use newdetect::{evaluate_new_detection, EntityTruth, NewDetectionEvaluation};
pub use ranked::{average_precision, precision_at_k, RankedEvaluation};

/// Harmonic mean of precision and recall; zero when either is zero.
pub fn f1(precision: f64, recall: f64) -> f64 {
    if precision + recall <= 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f1_of_equal_precision_recall() {
        assert!((f1(0.8, 0.8) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn f1_zero_when_either_zero() {
        assert_eq!(f1(0.0, 0.9), 0.0);
        assert_eq!(f1(0.9, 0.0), 0.0);
    }

    #[test]
    fn f1_is_harmonic_mean() {
        assert!((f1(1.0, 0.5) - 2.0 / 3.0).abs() < 1e-12);
    }
}
