//! "Facts found" evaluation (paper Section 4.2, Table 10) and fact accuracy
//! for the large-scale profiling (Table 11).

use ltee_fusion::Entity;
use ltee_kb::{ClassKey, KnowledgeBase};
use ltee_newdetect::NewDetectionOutcome;
use ltee_types::{value_equivalent, EquivalenceConfig};
use ltee_webtables::GoldStandard;
use serde::{Deserialize, Serialize};

use crate::f1;
use crate::instances::entity_gold_cluster;

/// Result of the facts-found evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FactsEvaluation {
    /// Precision of the returned facts.
    pub precision: f64,
    /// Recall against the gold facts whose correct value is present in the
    /// tables.
    pub recall: f64,
    /// F1 of the two.
    pub f1: f64,
    /// Total facts returned for entities classified as new.
    pub returned_facts: usize,
    /// Number of returned facts judged correct.
    pub correct_facts: usize,
}

/// Evaluate the facts of entities classified as new against the gold facts.
///
/// * Facts of entities that cannot be mapped to a new gold cluster (wrongly
///   created or wrongly classified as new) count as wrong.
/// * A fact is correct when it is equivalent (data-type specific similarity
///   with a tolerance range) to the gold fact of its cluster and property.
/// * Recall counts, over the new gold clusters, the gold facts whose correct
///   value is present in the tables (Table 5, last column) — the value
///   groups the system could have gotten right.
pub fn evaluate_facts(
    entities: &[Entity],
    outcomes: &[NewDetectionOutcome],
    gold: &GoldStandard,
    kb: &KnowledgeBase,
    class: ClassKey,
) -> FactsEvaluation {
    assert_eq!(entities.len(), outcomes.len(), "one outcome per entity");
    let eq = EquivalenceConfig::lenient();

    let mut returned = 0usize;
    let mut correct = 0usize;
    // Recallable gold facts: (cluster, property) groups of new clusters with
    // the correct value present.
    let recallable: Vec<(usize, &str)> = gold
        .facts
        .iter()
        .filter(|f| f.value_present && gold.clusters[f.cluster].is_new)
        .map(|f| (f.cluster, f.property.as_str()))
        .collect();
    let mut recalled: std::collections::HashSet<(usize, String)> = std::collections::HashSet::new();

    for (entity, outcome) in entities.iter().zip(outcomes.iter()) {
        if !outcome.is_new() {
            continue;
        }
        let cluster = entity_gold_cluster(&entity.rows, gold);
        let new_cluster = cluster.filter(|&ci| gold.clusters[ci].is_new);
        for (property, value, _) in &entity.facts {
            returned += 1;
            let Some(ci) = new_cluster else { continue };
            let Some(gold_fact) = gold.facts.iter().find(|f| f.cluster == ci && &f.property == property)
            else {
                continue;
            };
            let dtype = kb
                .property_by_name(class, property)
                .map(|p| p.data_type)
                .unwrap_or_else(|| value.data_type());
            if value_equivalent(value, &gold_fact.correct_value, dtype, &eq) {
                correct += 1;
                recalled.insert((ci, property.clone()));
            }
        }
    }

    let precision = if returned == 0 { 0.0 } else { correct as f64 / returned as f64 };
    let recall = if recallable.is_empty() {
        0.0
    } else {
        recalled.len() as f64 / recallable.len() as f64
    };
    FactsEvaluation {
        precision,
        recall,
        f1: f1(precision, recall),
        returned_facts: returned,
        correct_facts: correct,
    }
}

/// Fact accuracy against the world ground truth — used by the large-scale
/// profiling (Table 11), where a sample of new entities is checked against
/// the "real world" rather than the gold standard.
pub fn fact_accuracy_against_world(
    entities: &[&Entity],
    world: &ltee_kb::World,
    entity_of: impl Fn(&Entity) -> Option<ltee_kb::EntityId>,
    class: ClassKey,
) -> f64 {
    let eq = EquivalenceConfig::lenient();
    let mut total = 0usize;
    let mut correct = 0usize;
    for entity in entities {
        let Some(world_id) = entity_of(entity) else {
            total += entity.facts.len();
            continue;
        };
        let Some(world_entity) = world.entity(world_id) else { continue };
        for (prop, value, _) in &entity.facts {
            total += 1;
            let Some(truth) = world_entity.fact(prop) else { continue };
            let dtype = world
                .kb()
                .property_by_name(class, prop)
                .map(|p| p.data_type)
                .unwrap_or_else(|| value.data_type());
            if value_equivalent(value, truth, dtype, &eq) {
                correct += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltee_kb::{EntityId, InstanceId};
    use ltee_types::{DataType, Value};
    use ltee_webtables::{GoldCluster, GoldFact, RowRef, TableId};

    fn r(t: u64, row: usize) -> RowRef {
        RowRef::new(TableId(t), row)
    }

    fn kb_with_song_props() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        kb.add_class(ClassKey::Song);
        kb.add_property(ClassKey::Song, "runtime", DataType::Quantity, "length");
        kb.add_property(ClassKey::Song, "musicalArtist", DataType::InstanceReference, "artist");
        kb
    }

    fn gold_one_new_cluster() -> GoldStandard {
        GoldStandard {
            class: ClassKey::Song,
            tables: vec![],
            clusters: vec![GoldCluster {
                entity: EntityId(0),
                rows: vec![r(1, 0), r(2, 0)],
                is_new: true,
                is_target_class: true,
                kb_instance: None,
                homonym_group: 0,
            }],
            attributes: vec![],
            facts: vec![
                GoldFact {
                    cluster: 0,
                    property: "runtime".into(),
                    correct_value: Value::Quantity(200.0),
                    value_present: true,
                },
                GoldFact {
                    cluster: 0,
                    property: "musicalArtist".into(),
                    correct_value: Value::InstanceRef("Echo Chamber".into()),
                    value_present: true,
                },
            ],
        }
    }

    fn entity(rows: Vec<RowRef>, facts: Vec<(&str, Value)>) -> Entity {
        Entity {
            class: ClassKey::Song,
            rows,
            labels: vec!["x".into()],
            facts: facts.into_iter().map(|(p, v)| (p.to_string(), v, 1.0)).collect(),
        }
    }

    #[test]
    fn correct_facts_give_perfect_scores() {
        let gold = gold_one_new_cluster();
        let kb = kb_with_song_props();
        let entities = vec![entity(
            vec![r(1, 0), r(2, 0)],
            vec![
                ("runtime", Value::Quantity(200.0)),
                ("musicalArtist", Value::InstanceRef("Echo Chamber".into())),
            ],
        )];
        let outcomes = vec![NewDetectionOutcome::New];
        let eval = evaluate_facts(&entities, &outcomes, &gold, &kb, ClassKey::Song);
        assert_eq!(eval.precision, 1.0);
        assert_eq!(eval.recall, 1.0);
        assert_eq!(eval.f1, 1.0);
    }

    #[test]
    fn wrong_value_reduces_precision_and_recall() {
        let gold = gold_one_new_cluster();
        let kb = kb_with_song_props();
        let entities = vec![entity(vec![r(1, 0), r(2, 0)], vec![("runtime", Value::Quantity(999.0))])];
        let outcomes = vec![NewDetectionOutcome::New];
        let eval = evaluate_facts(&entities, &outcomes, &gold, &kb, ClassKey::Song);
        assert_eq!(eval.precision, 0.0);
        assert_eq!(eval.recall, 0.0);
    }

    #[test]
    fn facts_of_wrongly_new_entities_count_as_wrong() {
        let mut gold = gold_one_new_cluster();
        gold.clusters[0].is_new = false;
        gold.clusters[0].kb_instance = Some(InstanceId(7));
        let kb = kb_with_song_props();
        let entities = vec![entity(vec![r(1, 0), r(2, 0)], vec![("runtime", Value::Quantity(200.0))])];
        let outcomes = vec![NewDetectionOutcome::New];
        let eval = evaluate_facts(&entities, &outcomes, &gold, &kb, ClassKey::Song);
        assert_eq!(eval.precision, 0.0, "facts of an existing instance returned as new are wrong");
    }

    #[test]
    fn entities_classified_existing_are_ignored() {
        let gold = gold_one_new_cluster();
        let kb = kb_with_song_props();
        let entities = vec![entity(vec![r(1, 0), r(2, 0)], vec![("runtime", Value::Quantity(200.0))])];
        let outcomes = vec![NewDetectionOutcome::Existing(InstanceId(3))];
        let eval = evaluate_facts(&entities, &outcomes, &gold, &kb, ClassKey::Song);
        assert_eq!(eval.returned_facts, 0);
        assert_eq!(eval.recall, 0.0);
    }

    #[test]
    fn tolerance_accepts_slightly_off_quantities() {
        let gold = gold_one_new_cluster();
        let kb = kb_with_song_props();
        // 205 vs 200 is within the lenient 10% tolerance.
        let entities = vec![entity(vec![r(1, 0), r(2, 0)], vec![("runtime", Value::Quantity(205.0))])];
        let outcomes = vec![NewDetectionOutcome::New];
        let eval = evaluate_facts(&entities, &outcomes, &gold, &kb, ClassKey::Song);
        assert_eq!(eval.precision, 1.0);
    }

    #[test]
    fn fact_accuracy_against_world_counts_matches() {
        use ltee_kb::{generate_world, GeneratorConfig, Scale};
        let world = generate_world(&GeneratorConfig::new(Scale::tiny(), 91));
        let class = ClassKey::Song;
        let tail = &world.long_tail_of_class(class)[0];
        let good = entity(
            vec![r(1, 0)],
            vec![("runtime", tail.fact("runtime").unwrap().clone())],
        );
        let bad = entity(vec![r(2, 0)], vec![("runtime", Value::Quantity(-1.0))]);
        let entities = vec![&good, &bad];
        let id = tail.id;
        let acc = fact_accuracy_against_world(&entities, &world, |_| Some(id), class);
        assert!((acc - 0.5).abs() < 1e-12);
    }
}
