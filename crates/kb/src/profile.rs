//! Knowledge base profiling: the statistics reported in paper Tables 1 and 2.

use serde::{Deserialize, Serialize};

use crate::model::KnowledgeBase;
use crate::schema::{class_schema, ClassKey};

/// Per-property density information (paper Table 2 rows).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PropertyDensity {
    /// Property name.
    pub property: String,
    /// Number of facts for the property.
    pub facts: usize,
    /// Fraction of class instances with a fact for the property.
    pub density: f64,
}

/// Per-class profile (paper Table 1 rows plus Table 2 density breakdown).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassProfile {
    /// The class.
    pub class: ClassKey,
    /// Number of instances of the class.
    pub instances: usize,
    /// Number of facts over all instances of the class.
    pub facts: usize,
    /// Densities per property, ordered from densest to sparsest (as in the
    /// paper's Table 2).
    pub densities: Vec<PropertyDensity>,
}

impl ClassProfile {
    /// Compute the profile of a class from the knowledge base.
    pub fn compute(kb: &KnowledgeBase, class: ClassKey) -> Self {
        let instances = kb.class_instance_count(class);
        let facts = kb.class_fact_count(class);
        let mut densities = Vec::new();
        for spec in class_schema(class) {
            if let Some(prop) = kb.property_by_name(class, spec.name) {
                let count = kb.property_values(prop.id).len();
                let density = if instances == 0 { 0.0 } else { count as f64 / instances as f64 };
                densities.push(PropertyDensity { property: spec.name.to_string(), facts: count, density });
            }
        }
        densities.sort_by(|a, b| b.density.partial_cmp(&a.density).unwrap_or(std::cmp::Ordering::Equal));
        Self { class, instances, facts, densities }
    }

    /// Render the profile as table rows `(property, facts, density)` for the
    /// experiment harness.
    pub fn density_rows(&self) -> Vec<(String, usize, f64)> {
        self.densities.iter().map(|d| (d.property.clone(), d.facts, d.density)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_world, GeneratorConfig, Scale};

    #[test]
    fn profile_counts_match_kb() {
        let world = generate_world(&GeneratorConfig::new(Scale::tiny(), 1));
        for class in crate::schema::CLASS_KEYS {
            let profile = ClassProfile::compute(world.kb(), class);
            assert_eq!(profile.instances, world.kb().class_instance_count(class));
            assert_eq!(profile.facts, world.kb().class_fact_count(class));
            let sum: usize = profile.densities.iter().map(|d| d.facts).sum();
            assert_eq!(sum, profile.facts, "per-property facts must sum to class facts");
        }
    }

    #[test]
    fn densities_are_sorted_descending() {
        let world = generate_world(&GeneratorConfig::new(Scale::tiny(), 2));
        let profile = ClassProfile::compute(world.kb(), ClassKey::GridironFootballPlayer);
        for w in profile.densities.windows(2) {
            assert!(w[0].density >= w[1].density);
        }
    }

    #[test]
    fn densities_within_unit_interval() {
        let world = generate_world(&GeneratorConfig::new(Scale::tiny(), 3));
        for class in crate::schema::CLASS_KEYS {
            let profile = ClassProfile::compute(world.kb(), class);
            for d in &profile.densities {
                assert!((0.0..=1.0).contains(&d.density));
            }
        }
    }

    #[test]
    fn generated_densities_track_schema_densities() {
        // At gold scale the empirical density should be within ±0.15 of the
        // schema density for every property.
        let world = generate_world(&GeneratorConfig::new(Scale::gold(), 4));
        for class in crate::schema::CLASS_KEYS {
            let profile = ClassProfile::compute(world.kb(), class);
            for spec in class_schema(class) {
                let observed = profile
                    .densities
                    .iter()
                    .find(|d| d.property == spec.name)
                    .map(|d| d.density)
                    .unwrap_or(0.0);
                assert!(
                    (observed - spec.kb_density).abs() < 0.15,
                    "{class}/{}: observed {observed:.2} vs schema {:.2}",
                    spec.name,
                    spec.kb_density
                );
            }
        }
    }

    #[test]
    fn empty_kb_profile_is_zero() {
        let kb = KnowledgeBase::new();
        let profile = ClassProfile::compute(&kb, ClassKey::Song);
        assert_eq!(profile.instances, 0);
        assert_eq!(profile.facts, 0);
    }
}
