//! The class and property schemas of the three profiled classes.
//!
//! Paper Section 2.1: the experiments extend the DBpedia classes
//! **GridironFootballPlayer**, **Song** and **Settlement**, chosen from the
//! three first-level classes Agent, Work and Place. Only properties with an
//! initial density of at least 30 % are considered; Table 2 lists them with
//! their densities, which the synthetic generator reproduces.

use ltee_types::DataType;
use serde::{Deserialize, Serialize};

/// The three target classes of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ClassKey {
    /// dbo:GridironFootballPlayer (first-level class Agent).
    GridironFootballPlayer,
    /// dbo:Song, including dbo:Single (first-level class Work).
    Song,
    /// dbo:Settlement (first-level class Place).
    Settlement,
}

/// All target classes in a stable order.
pub const CLASS_KEYS: [ClassKey; 3] =
    [ClassKey::GridironFootballPlayer, ClassKey::Song, ClassKey::Settlement];

impl ClassKey {
    /// The DBpedia-style class name.
    pub fn name(self) -> &'static str {
        match self {
            ClassKey::GridironFootballPlayer => "GridironFootballPlayer",
            ClassKey::Song => "Song",
            ClassKey::Settlement => "Settlement",
        }
    }

    /// Stable on-disk tag of this class (model persistence); the inverse is
    /// [`ClassKey::from_code`].
    pub fn code(self) -> u8 {
        match self {
            ClassKey::GridironFootballPlayer => 0,
            ClassKey::Song => 1,
            ClassKey::Settlement => 2,
        }
    }

    /// Inverse of [`ClassKey::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(ClassKey::GridironFootballPlayer),
            1 => Some(ClassKey::Song),
            2 => Some(ClassKey::Settlement),
            _ => None,
        }
    }

    /// The short name used in the paper's tables.
    pub fn short_name(self) -> &'static str {
        match self {
            ClassKey::GridironFootballPlayer => "GF-Player",
            ClassKey::Song => "Song",
            ClassKey::Settlement => "Settlement",
        }
    }

    /// Ancestor chain (most specific first, excluding the class itself) in
    /// the class hierarchy, up to the respective first-level class and the
    /// root `Thing`. Used by the `TYPE` entity-to-instance metric.
    pub fn ancestors(self) -> &'static [&'static str] {
        match self {
            ClassKey::GridironFootballPlayer => &["AmericanFootballPlayer", "Athlete", "Person", "Agent", "Thing"],
            ClassKey::Song => &["MusicalWork", "Work", "Thing"],
            ClassKey::Settlement => &["PopulatedPlace", "Place", "Thing"],
        }
    }

    /// Sibling classes used to generate *confusable* entities: entities of
    /// these classes appear in web tables that can be mis-matched to the
    /// target class by the table-to-class matcher (a documented error source
    /// in Section 5, e.g. regions or mountains matched as settlements).
    pub fn confusable_class(self) -> &'static str {
        match self {
            ClassKey::GridironFootballPlayer => "BaseballPlayer",
            ClassKey::Song => "Album",
            ClassKey::Settlement => "Mountain",
        }
    }

    /// Paper Table 1 instance count for this class (the real DBpedia 2014
    /// number); the generator scales it down by [`super::Scale`].
    pub fn paper_instance_count(self) -> usize {
        match self {
            ClassKey::GridironFootballPlayer => 20_751,
            ClassKey::Song => 52_533,
            ClassKey::Settlement => 468_986,
        }
    }
}

impl std::fmt::Display for ClassKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Specification of a property of one of the target classes.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PropertySpec {
    /// Property name (DBpedia-style camelCase).
    pub name: &'static str,
    /// Data type of the property's values.
    pub data_type: DataType,
    /// Fraction of knowledge base instances carrying a fact for this
    /// property (paper Table 2 density).
    pub kb_density: f64,
    /// Fraction of *web table columns about this class* that carry this
    /// property — controls how often the property appears in generated
    /// tables. Loosely follows the relative densities of paper Table 12.
    pub table_density: f64,
    /// Header labels under which web tables publish this property. The
    /// first entry is the canonical label; the rest are synonyms/variants.
    pub header_labels: &'static [&'static str],
}

/// The property schema of a class (paper Table 2).
pub fn class_schema(class: ClassKey) -> &'static [PropertySpec] {
    match class {
        ClassKey::GridironFootballPlayer => GF_PLAYER_SCHEMA,
        ClassKey::Song => SONG_SCHEMA,
        ClassKey::Settlement => SETTLEMENT_SCHEMA,
    }
}

/// GridironFootballPlayer properties (11 properties, paper Table 2).
static GF_PLAYER_SCHEMA: &[PropertySpec] = &[
    PropertySpec { name: "birthDate", data_type: DataType::Date, kb_density: 0.9743, table_density: 0.20, header_labels: &["birth date", "born", "date of birth", "dob"] },
    PropertySpec { name: "college", data_type: DataType::InstanceReference, kb_density: 0.9292, table_density: 0.50, header_labels: &["college", "school", "university"] },
    PropertySpec { name: "birthPlace", data_type: DataType::InstanceReference, kb_density: 0.8632, table_density: 0.05, header_labels: &["birth place", "birthplace", "hometown"] },
    PropertySpec { name: "team", data_type: DataType::InstanceReference, kb_density: 0.6433, table_density: 0.55, header_labels: &["team", "nfl team", "club", "franchise"] },
    PropertySpec { name: "number", data_type: DataType::NominalInteger, kb_density: 0.5508, table_density: 0.25, header_labels: &["number", "no", "jersey", "#"] },
    PropertySpec { name: "position", data_type: DataType::NominalString, kb_density: 0.5417, table_density: 0.65, header_labels: &["position", "pos"] },
    PropertySpec { name: "height", data_type: DataType::Quantity, kb_density: 0.4847, table_density: 0.35, header_labels: &["height", "ht"] },
    PropertySpec { name: "weight", data_type: DataType::Quantity, kb_density: 0.4832, table_density: 0.45, header_labels: &["weight", "wt"] },
    PropertySpec { name: "draftYear", data_type: DataType::Date, kb_density: 0.3830, table_density: 0.08, header_labels: &["draft year", "year drafted", "draft"] },
    PropertySpec { name: "draftRound", data_type: DataType::NominalInteger, kb_density: 0.3822, table_density: 0.12, header_labels: &["draft round", "round", "rd"] },
    PropertySpec { name: "draftPick", data_type: DataType::NominalInteger, kb_density: 0.3819, table_density: 0.18, header_labels: &["draft pick", "pick", "overall pick"] },
];

/// Song properties (7 properties, paper Table 2).
static SONG_SCHEMA: &[PropertySpec] = &[
    PropertySpec { name: "genre", data_type: DataType::NominalString, kb_density: 0.8954, table_density: 0.15, header_labels: &["genre", "style"] },
    PropertySpec { name: "musicalArtist", data_type: DataType::InstanceReference, kb_density: 0.8585, table_density: 0.75, header_labels: &["artist", "musical artist", "performer", "singer"] },
    PropertySpec { name: "recordLabel", data_type: DataType::InstanceReference, kb_density: 0.8195, table_density: 0.07, header_labels: &["record label", "label"] },
    PropertySpec { name: "runtime", data_type: DataType::Quantity, kb_density: 0.8002, table_density: 0.60, header_labels: &["length", "runtime", "duration", "time"] },
    PropertySpec { name: "album", data_type: DataType::InstanceReference, kb_density: 0.7741, table_density: 0.30, header_labels: &["album", "from album", "release"] },
    PropertySpec { name: "writer", data_type: DataType::InstanceReference, kb_density: 0.6461, table_density: 0.03, header_labels: &["writer", "songwriter", "written by"] },
    PropertySpec { name: "releaseDate", data_type: DataType::Date, kb_density: 0.6034, table_density: 0.28, header_labels: &["release date", "released", "year"] },
];

/// Settlement properties (5 properties, paper Table 2).
static SETTLEMENT_SCHEMA: &[PropertySpec] = &[
    PropertySpec { name: "country", data_type: DataType::InstanceReference, kb_density: 0.9251, table_density: 0.25, header_labels: &["country", "nation"] },
    PropertySpec { name: "isPartOf", data_type: DataType::InstanceReference, kb_density: 0.8880, table_density: 0.55, header_labels: &["is part of", "region", "state", "county", "district"] },
    PropertySpec { name: "populationTotal", data_type: DataType::Quantity, kb_density: 0.6244, table_density: 0.40, header_labels: &["population", "population total", "inhabitants"] },
    PropertySpec { name: "postalCode", data_type: DataType::NominalString, kb_density: 0.3296, table_density: 0.30, header_labels: &["postal code", "zip code", "zip", "plz"] },
    PropertySpec { name: "elevation", data_type: DataType::Quantity, kb_density: 0.3126, table_density: 0.05, header_labels: &["elevation", "altitude", "elevation m"] },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemas_have_paper_property_counts() {
        assert_eq!(class_schema(ClassKey::GridironFootballPlayer).len(), 11);
        assert_eq!(class_schema(ClassKey::Song).len(), 7);
        assert_eq!(class_schema(ClassKey::Settlement).len(), 5);
    }

    #[test]
    fn densities_are_at_least_thirty_percent() {
        // Paper: "We only consider properties that have an initial density of
        // at least 30 %".
        for class in CLASS_KEYS {
            for spec in class_schema(class) {
                assert!(spec.kb_density >= 0.30, "{}/{} density {}", class, spec.name, spec.kb_density);
            }
        }
    }

    #[test]
    fn densities_are_probabilities() {
        for class in CLASS_KEYS {
            for spec in class_schema(class) {
                assert!((0.0..=1.0).contains(&spec.kb_density));
                assert!((0.0..=1.0).contains(&spec.table_density));
            }
        }
    }

    #[test]
    fn property_names_unique_per_class() {
        for class in CLASS_KEYS {
            let names: std::collections::HashSet<_> =
                class_schema(class).iter().map(|p| p.name).collect();
            assert_eq!(names.len(), class_schema(class).len());
        }
    }

    #[test]
    fn every_property_has_at_least_one_header_label() {
        for class in CLASS_KEYS {
            for spec in class_schema(class) {
                assert!(!spec.header_labels.is_empty());
            }
        }
    }

    #[test]
    fn ancestors_end_with_thing() {
        for class in CLASS_KEYS {
            assert_eq!(*class.ancestors().last().unwrap(), "Thing");
        }
    }

    #[test]
    fn paper_instance_counts_match_table_1() {
        assert_eq!(ClassKey::GridironFootballPlayer.paper_instance_count(), 20_751);
        assert_eq!(ClassKey::Song.paper_instance_count(), 52_533);
        assert_eq!(ClassKey::Settlement.paper_instance_count(), 468_986);
    }
}
