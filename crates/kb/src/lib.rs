//! # ltee-kb
//!
//! The knowledge base substrate: an in-memory cross-domain knowledge base
//! modelled after DBpedia (classes with a hierarchy, typed properties,
//! instances with labels / abstracts / popularity, facts) plus a synthetic
//! **world generator** that stands in for the data resources the paper uses
//! but which are not redistributable here (DBpedia 2014 and, indirectly, the
//! entities described by the WDC 2012 web table corpus).
//!
//! ## The world / knowledge base split
//!
//! The paper's task is to find entities that exist in the real world (and in
//! web tables) but are missing from the knowledge base. To reproduce that
//! setting synthetically, the generator first creates a **world**: the
//! complete universe of entities of the three profiled classes
//! (GridironFootballPlayer, Song, Settlement), each with a full set of true
//! facts, alternative labels, a popularity score and a homonym group.
//! A *head* subset of the world (the "notable" entities) is then projected
//! into the [`KnowledgeBase`], with per-property fact dropout matching the
//! densities of paper Table 2. The remaining *long-tail* entities exist only
//! in the world — they are exactly what the pipeline is supposed to
//! (re-)discover from web tables, and what the gold standard marks as *new*.
//!
//! The class profiles (instance counts, property schemas, densities) follow
//! paper Tables 1 and 2 at a configurable [`Scale`].

#![warn(missing_docs)]

pub mod generator;
pub mod ids;
pub mod model;
pub mod names;
pub mod profile;
pub mod schema;

pub use generator::{generate_world, GeneratorConfig, Scale, World, WorldEntity};
pub use ids::{ClassId, EntityId, InstanceId, PropertyId};
pub use model::{Fact, Instance, KnowledgeBase, KnowledgeBaseClass, Property};
pub use profile::{ClassProfile, PropertyDensity};
pub use schema::{class_schema, ClassKey, PropertySpec, CLASS_KEYS};
