//! Strongly typed identifiers for knowledge base and world objects.

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// The raw numeric value.
            pub fn raw(self) -> u64 {
                self.0
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                Self(v)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a class in the knowledge base class hierarchy.
    ClassId
);
id_type!(
    /// Identifier of a property of a knowledge base class.
    PropertyId
);
id_type!(
    /// Identifier of an instance in the knowledge base.
    InstanceId
);
id_type!(
    /// Identifier of an entity in the synthetic world (the full universe,
    /// of which the knowledge base covers only the head portion).
    EntityId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_types() {
        let c = ClassId(1);
        let p = PropertyId(1);
        // Compiles only because they are different types with equal raw values.
        assert_eq!(c.raw(), p.raw());
    }

    #[test]
    fn ids_order_by_raw_value() {
        assert!(InstanceId(3) < InstanceId(10));
    }

    #[test]
    fn from_u64_roundtrip() {
        let e: EntityId = 42u64.into();
        assert_eq!(e.raw(), 42);
    }

    #[test]
    fn display_includes_type_name() {
        assert_eq!(ClassId(7).to_string(), "ClassId(7)");
    }
}
