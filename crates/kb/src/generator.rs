//! Synthetic world and knowledge base generator.
//!
//! See the crate-level documentation for the world / knowledge base split.
//! Everything is deterministic given the seed in [`GeneratorConfig`].

use std::collections::{BTreeMap, HashMap};

use ltee_types::{Date, Value};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::ids::{EntityId, InstanceId};
use crate::model::{Fact, KnowledgeBase};
use crate::names;
use crate::schema::{class_schema, ClassKey, CLASS_KEYS};

/// How large to make the synthetic world.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scale {
    /// Entities per class that are projected into the knowledge base
    /// ("head" / notable entities).
    pub kb_entities_per_class: usize,
    /// Long-tail entities per class that exist only in the world — the
    /// entities the pipeline should discover as *new*.
    pub long_tail_per_class: usize,
    /// Entities of a confusable sibling class (regions, albums, baseball
    /// players) that web tables may wrongly attribute to the target class.
    pub confusable_per_class: usize,
}

impl Scale {
    /// Minimal scale for fast unit tests.
    pub fn tiny() -> Self {
        Self { kb_entities_per_class: 40, long_tail_per_class: 25, confusable_per_class: 6 }
    }

    /// Gold-standard scale: comparable to the paper's manually annotated
    /// gold standard (Table 5: ~100-200 tables and ~100 clusters per class).
    pub fn gold() -> Self {
        Self { kb_entities_per_class: 140, long_tail_per_class: 90, confusable_per_class: 15 }
    }

    /// Profiling scale used by the Table 11/12 benches: large enough that
    /// relative increases and density shapes are meaningful, small enough to
    /// run in CI minutes.
    pub fn profiling() -> Self {
        Self { kb_entities_per_class: 1_500, long_tail_per_class: 900, confusable_per_class: 80 }
    }

    /// Total number of world entities per class (excluding confusables).
    pub fn world_entities_per_class(&self) -> usize {
        self.kb_entities_per_class + self.long_tail_per_class
    }
}

/// Configuration of the world generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// World size.
    pub scale: Scale,
    /// RNG seed; every derived artefact is deterministic in this seed.
    pub seed: u64,
    /// Probability that a newly generated entity re-uses an existing label,
    /// forming a homonym group. The paper reports homonyms as the main
    /// difficulty for the Song class, so songs use three times this rate.
    pub homonym_rate: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self { scale: Scale::gold(), seed: 2019, homonym_rate: 0.04 }
    }
}

impl GeneratorConfig {
    /// Convenience constructor with an explicit scale and seed.
    pub fn new(scale: Scale, seed: u64) -> Self {
        Self { scale, seed, ..Default::default() }
    }
}

/// An entity of the synthetic world with its full ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldEntity {
    /// World-wide identifier.
    pub id: EntityId,
    /// Target class the entity belongs to (for confusable entities, the
    /// class whose tables they pollute).
    pub class: ClassKey,
    /// Canonical label.
    pub canonical_label: String,
    /// Alternative labels (spelling variants, qualifiers).
    pub alt_labels: Vec<String>,
    /// Ground-truth facts, keyed by property name.
    pub facts: BTreeMap<String, Value>,
    /// Popularity (page-link proxy); higher for head entities.
    pub popularity: u64,
    /// Whether the entity was projected into the knowledge base.
    pub in_kb: bool,
    /// Whether the entity actually belongs to a confusable sibling class
    /// (and therefore should *not* be added to the knowledge base even
    /// though tables may describe it alongside target-class entities).
    pub confusable: bool,
    /// Homonym group: entities sharing a (normalised) label share a group.
    pub homonym_group: u64,
}

impl WorldEntity {
    /// All labels, canonical first.
    pub fn labels(&self) -> Vec<&str> {
        std::iter::once(self.canonical_label.as_str())
            .chain(self.alt_labels.iter().map(String::as_str))
            .collect()
    }

    /// The ground-truth value of a property, if the entity has one.
    pub fn fact(&self, property: &str) -> Option<&Value> {
        self.facts.get(property)
    }
}

/// The generated world: all entities plus the knowledge base projected from
/// the head entities.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct World {
    /// Every entity of the world (including confusables).
    pub entities: Vec<WorldEntity>,
    /// The knowledge base covering the head entities.
    pub kb: KnowledgeBase,
    /// The configuration the world was generated with.
    pub config: GeneratorConfig,
    entity_to_instance: HashMap<EntityId, InstanceId>,
}

impl World {
    /// Entity by id.
    pub fn entity(&self, id: EntityId) -> Option<&WorldEntity> {
        self.entities.get(id.raw() as usize)
    }

    /// All (non-confusable) entities of a class.
    pub fn entities_of_class(&self, class: ClassKey) -> Vec<&WorldEntity> {
        self.entities.iter().filter(|e| e.class == class && !e.confusable).collect()
    }

    /// The long-tail entities of a class (not in the knowledge base).
    pub fn long_tail_of_class(&self, class: ClassKey) -> Vec<&WorldEntity> {
        self.entities.iter().filter(|e| e.class == class && !e.confusable && !e.in_kb).collect()
    }

    /// The head entities of a class (projected into the knowledge base).
    pub fn head_of_class(&self, class: ClassKey) -> Vec<&WorldEntity> {
        self.entities.iter().filter(|e| e.class == class && !e.confusable && e.in_kb).collect()
    }

    /// Confusable entities attached to a class.
    pub fn confusables_of_class(&self, class: ClassKey) -> Vec<&WorldEntity> {
        self.entities.iter().filter(|e| e.class == class && e.confusable).collect()
    }

    /// The knowledge base instance an entity was projected to, if any.
    pub fn instance_for_entity(&self, id: EntityId) -> Option<InstanceId> {
        self.entity_to_instance.get(&id).copied()
    }

    /// The knowledge base.
    pub fn kb(&self) -> &KnowledgeBase {
        &self.kb
    }
}

/// Generate a world (and its knowledge base) from the configuration.
pub fn generate_world(config: &GeneratorConfig) -> World {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut entities: Vec<WorldEntity> = Vec::new();
    let mut next_homonym_group: u64 = 0;

    for class in CLASS_KEYS {
        let homonym_rate = match class {
            // Homonyms are far more common among songs (cover versions,
            // re-releases) — the paper calls this out explicitly.
            ClassKey::Song => config.homonym_rate * 3.0,
            _ => config.homonym_rate,
        };
        let total = config.scale.world_entities_per_class();
        let mut labels_seen: BTreeMap<String, u64> = BTreeMap::new();
        for i in 0..total {
            let in_kb = i < config.scale.kb_entities_per_class;
            let reuse_label = !labels_seen.is_empty() && rng.gen::<f64>() < homonym_rate;
            let canonical_label = if reuse_label {
                // Pick an existing label to form a homonym.
                let keys: Vec<&String> = labels_seen.keys().collect();
                (*keys.choose(&mut rng).expect("labels_seen non-empty")).clone()
            } else {
                generate_unique_label(class, &labels_seen, &mut rng)
            };
            let homonym_group = *labels_seen
                .entry(normalize_for_grouping(&canonical_label))
                .or_insert_with(|| {
                    let g = next_homonym_group;
                    next_homonym_group += 1;
                    g
                });
            let facts = generate_facts(class, &mut rng);
            let alt_labels = generate_alt_labels(class, &canonical_label, &facts, &mut rng);
            // Popularity: head entities follow a heavy-tailed distribution,
            // long-tail entities stay small.
            let popularity = if in_kb {
                let r = rng.gen::<f64>();
                (50.0 + 5_000.0 * (1.0 - r).powi(3)) as u64
            } else {
                rng.gen_range(0..30)
            };
            let id = EntityId(entities.len() as u64);
            entities.push(WorldEntity {
                id,
                class,
                canonical_label,
                alt_labels,
                facts,
                popularity,
                in_kb,
                confusable: false,
                homonym_group,
            });
        }

        // Confusable entities of the sibling class.
        for c in 0..config.scale.confusable_per_class {
            let label = generate_confusable_label(class, c, &mut rng);
            let homonym_group = next_homonym_group;
            next_homonym_group += 1;
            let id = EntityId(entities.len() as u64);
            entities.push(WorldEntity {
                id,
                class,
                canonical_label: label,
                alt_labels: Vec::new(),
                facts: generate_confusable_facts(class, &mut rng),
                popularity: rng.gen_range(0..20),
                in_kb: false,
                confusable: true,
                homonym_group,
            });
        }
    }

    // Project the head entities into the knowledge base.
    let mut kb = KnowledgeBase::new();
    let mut entity_to_instance = HashMap::new();
    for class in CLASS_KEYS {
        kb.add_class(class);
        for spec in class_schema(class) {
            kb.add_property(class, spec.name, spec.data_type, spec.header_labels[0]);
        }
    }
    let mut kb_rng = ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(1));
    for entity in entities.iter().filter(|e| e.in_kb && !e.confusable) {
        let schema = class_schema(entity.class);
        let mut facts = Vec::new();
        for spec in schema {
            if let Some(value) = entity.facts.get(spec.name) {
                // Drop facts according to the paper's densities.
                if kb_rng.gen::<f64>() < spec.kb_density {
                    let prop = kb
                        .property_by_name(entity.class, spec.name)
                        .expect("property registered above")
                        .id;
                    facts.push(Fact { property: prop, value: value.clone() });
                }
            }
        }
        let abstract_text = build_abstract(entity);
        let labels: Vec<String> =
            entity.labels().iter().map(|s| s.to_string()).collect();
        let instance_id =
            kb.add_instance(entity.class, labels, abstract_text, entity.popularity, facts);
        entity_to_instance.insert(entity.id, instance_id);
    }

    World { entities, kb, config: config.clone(), entity_to_instance }
}

fn normalize_for_grouping(label: &str) -> String {
    ltee_text::normalize_label(label)
}

fn generate_unique_label(
    class: ClassKey,
    seen: &BTreeMap<String, u64>,
    rng: &mut ChaCha8Rng,
) -> String {
    for attempt in 0..64 {
        let candidate = match class {
            ClassKey::GridironFootballPlayer => {
                let first = names::FIRST_NAMES.choose(rng).expect("non-empty pool");
                let last = names::LAST_NAMES.choose(rng).expect("non-empty pool");
                if attempt < 8 {
                    format!("{first} {last}")
                } else {
                    // Disambiguate with a middle initial once collisions pile up.
                    let initial = (b'A' + rng.gen_range(0..26u8)) as char;
                    format!("{first} {initial}. {last}")
                }
            }
            ClassKey::Song => {
                let w1 = names::SONG_TITLE_WORDS.choose(rng).expect("non-empty pool");
                let pattern = rng.gen_range(0..4);
                match pattern {
                    0 => format!("{w1} {}", names::SONG_TITLE_WORDS.choose(rng).expect("non-empty pool")),
                    1 => format!("The {w1}"),
                    2 => format!("{w1} of the {}", names::SONG_TITLE_WORDS.choose(rng).expect("non-empty pool")),
                    _ => format!("{w1} Tonight"),
                }
            }
            ClassKey::Settlement => {
                let stem = names::SETTLEMENT_STEMS.choose(rng).expect("non-empty pool");
                let suffix = names::SETTLEMENT_SUFFIXES.choose(rng).expect("non-empty pool");
                if attempt < 8 {
                    format!("{stem}{suffix}")
                } else {
                    let stem2 = names::SETTLEMENT_STEMS.choose(rng).expect("non-empty pool");
                    format!("{stem} {stem2}{suffix}")
                }
            }
        };
        if !seen.contains_key(&normalize_for_grouping(&candidate)) {
            return candidate;
        }
    }
    // Extremely unlikely fallback: make the label unique with a counter.
    format!("Entity {}", seen.len())
}

fn generate_confusable_label(class: ClassKey, index: usize, rng: &mut ChaCha8Rng) -> String {
    match class {
        ClassKey::GridironFootballPlayer => {
            let first = names::FIRST_NAMES.choose(rng).expect("non-empty pool");
            let last = names::LAST_NAMES.choose(rng).expect("non-empty pool");
            format!("{first} {last} (baseball)")
        }
        ClassKey::Song => {
            let w = names::ALBUM_WORDS.choose(rng).expect("non-empty pool");
            format!("{w} Vol. {}", index + 1)
        }
        ClassKey::Settlement => {
            let stem = names::SETTLEMENT_STEMS.choose(rng).expect("non-empty pool");
            format!("Mount {stem}")
        }
    }
}

fn generate_facts(class: ClassKey, rng: &mut ChaCha8Rng) -> BTreeMap<String, Value> {
    let mut facts = BTreeMap::new();
    match class {
        ClassKey::GridironFootballPlayer => {
            let birth_year = rng.gen_range(1960..=1995);
            facts.insert(
                "birthDate".into(),
                Value::Date(Date::day(birth_year, rng.gen_range(1..=12), rng.gen_range(1..=28))),
            );
            facts.insert(
                "college".into(),
                Value::InstanceRef(names::COLLEGES.choose(rng).expect("pool").to_string()),
            );
            facts.insert(
                "birthPlace".into(),
                Value::InstanceRef(names::BIRTH_CITIES.choose(rng).expect("pool").to_string()),
            );
            facts.insert(
                "team".into(),
                Value::InstanceRef(names::TEAMS.choose(rng).expect("pool").to_string()),
            );
            facts.insert("number".into(), Value::NominalInt(rng.gen_range(1..=99)));
            facts.insert(
                "position".into(),
                Value::Nominal(names::POSITIONS.choose(rng).expect("pool").to_string()),
            );
            facts.insert("height".into(), Value::Quantity(rng.gen_range(165.0..=208.0f64).round()));
            facts.insert("weight".into(), Value::Quantity(rng.gen_range(70.0..=160.0f64).round()));
            let draft_year = (birth_year + rng.gen_range(21..=24)).min(2014);
            facts.insert("draftYear".into(), Value::Date(Date::year(draft_year)));
            facts.insert("draftRound".into(), Value::NominalInt(rng.gen_range(1..=7)));
            facts.insert("draftPick".into(), Value::NominalInt(rng.gen_range(1..=260)));
        }
        ClassKey::Song => {
            facts.insert(
                "genre".into(),
                Value::Nominal(names::GENRES.choose(rng).expect("pool").to_string()),
            );
            facts.insert(
                "musicalArtist".into(),
                Value::InstanceRef(names::ARTISTS.choose(rng).expect("pool").to_string()),
            );
            facts.insert(
                "recordLabel".into(),
                Value::InstanceRef(names::RECORD_LABELS.choose(rng).expect("pool").to_string()),
            );
            facts.insert("runtime".into(), Value::Quantity(rng.gen_range(120.0..=420.0f64).round()));
            let album_word = names::ALBUM_WORDS.choose(rng).expect("pool");
            facts.insert("album".into(), Value::InstanceRef(format!("{album_word} {}", rng.gen_range(1..=30))));
            let writer = format!(
                "{} {}",
                names::FIRST_NAMES.choose(rng).expect("pool"),
                names::LAST_NAMES.choose(rng).expect("pool")
            );
            facts.insert("writer".into(), Value::InstanceRef(writer));
            let year = rng.gen_range(1960..=2012);
            facts.insert(
                "releaseDate".into(),
                Value::Date(Date::day(year, rng.gen_range(1..=12), rng.gen_range(1..=28))),
            );
        }
        ClassKey::Settlement => {
            facts.insert(
                "country".into(),
                Value::InstanceRef(names::COUNTRIES.choose(rng).expect("pool").to_string()),
            );
            facts.insert(
                "isPartOf".into(),
                Value::InstanceRef(names::REGIONS.choose(rng).expect("pool").to_string()),
            );
            // Heavy-tailed population: lots of small villages, few cities.
            let magnitude = rng.gen_range(2.0..=6.0f64);
            let population = (10.0f64.powf(magnitude)).round();
            facts.insert("populationTotal".into(), Value::Quantity(population));
            facts.insert("postalCode".into(), Value::Nominal(format!("{:05}", rng.gen_range(1_000..=99_999))));
            facts.insert("elevation".into(), Value::Quantity(rng.gen_range(0.0..=2500.0f64).round()));
        }
    }
    facts
}

fn generate_confusable_facts(class: ClassKey, rng: &mut ChaCha8Rng) -> BTreeMap<String, Value> {
    // Confusable entities share a couple of superficially compatible
    // attributes with the target class (which is exactly why the
    // table-to-class matcher can be fooled) but lack the rest.
    let mut facts = BTreeMap::new();
    match class {
        ClassKey::GridironFootballPlayer => {
            facts.insert("number".into(), Value::NominalInt(rng.gen_range(1..=60)));
            facts.insert("height".into(), Value::Quantity(rng.gen_range(165.0..=205.0f64).round()));
        }
        ClassKey::Song => {
            facts.insert(
                "musicalArtist".into(),
                Value::InstanceRef(names::ARTISTS.choose(rng).expect("pool").to_string()),
            );
            let year = rng.gen_range(1970..=2012);
            facts.insert("releaseDate".into(), Value::Date(Date::year(year)));
        }
        ClassKey::Settlement => {
            facts.insert(
                "country".into(),
                Value::InstanceRef(names::COUNTRIES.choose(rng).expect("pool").to_string()),
            );
            facts.insert("elevation".into(), Value::Quantity(rng.gen_range(800.0..=4500.0f64).round()));
        }
    }
    facts
}

fn generate_alt_labels(
    class: ClassKey,
    canonical: &str,
    facts: &BTreeMap<String, Value>,
    rng: &mut ChaCha8Rng,
) -> Vec<String> {
    let mut alts = Vec::new();
    match class {
        ClassKey::GridironFootballPlayer => {
            // "John Smith" -> "J. Smith"
            let parts: Vec<&str> = canonical.split_whitespace().collect();
            if parts.len() >= 2 {
                if let Some(initial) = parts[0].chars().next() {
                    alts.push(format!("{initial}. {}", parts[parts.len() - 1]));
                }
            }
        }
        ClassKey::Song => {
            alts.push(format!("{canonical} (song)"));
            if rng.gen::<f64>() < 0.3 {
                if let Some(Value::InstanceRef(artist)) = facts.get("musicalArtist") {
                    alts.push(format!("{canonical} ({artist} song)"));
                }
            }
        }
        ClassKey::Settlement => {
            if let Some(Value::InstanceRef(region)) = facts.get("isPartOf") {
                if rng.gen::<f64>() < 0.4 {
                    alts.push(format!("{canonical}, {region}"));
                }
            }
        }
    }
    alts
}

fn build_abstract(entity: &WorldEntity) -> String {
    let mut parts = vec![entity.canonical_label.clone()];
    match entity.class {
        ClassKey::GridironFootballPlayer => {
            parts.push("is an American football player".into());
            if let Some(v) = entity.facts.get("team") {
                parts.push(format!("who plays for the {}", v.render()));
            }
            if let Some(v) = entity.facts.get("college") {
                parts.push(format!("and played college football at {}", v.render()));
            }
            if let Some(v) = entity.facts.get("position") {
                parts.push(format!("at the {} position", v.render()));
            }
        }
        ClassKey::Song => {
            parts.push("is a song".into());
            if let Some(v) = entity.facts.get("musicalArtist") {
                parts.push(format!("by {}", v.render()));
            }
            if let Some(v) = entity.facts.get("album") {
                parts.push(format!("from the album {}", v.render()));
            }
            if let Some(v) = entity.facts.get("releaseDate") {
                parts.push(format!("released in {}", v.render()));
            }
        }
        ClassKey::Settlement => {
            parts.push("is a settlement".into());
            if let Some(v) = entity.facts.get("isPartOf") {
                parts.push(format!("in {}", v.render()));
            }
            if let Some(v) = entity.facts.get("country") {
                parts.push(format!("located in {}", v.render()));
            }
        }
    }
    parts.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_world() -> World {
        generate_world(&GeneratorConfig::new(Scale::tiny(), 7))
    }

    #[test]
    fn world_has_expected_entity_counts() {
        let w = tiny_world();
        let scale = Scale::tiny();
        for class in CLASS_KEYS {
            assert_eq!(w.entities_of_class(class).len(), scale.world_entities_per_class());
            assert_eq!(w.head_of_class(class).len(), scale.kb_entities_per_class);
            assert_eq!(w.long_tail_of_class(class).len(), scale.long_tail_per_class);
            assert_eq!(w.confusables_of_class(class).len(), scale.confusable_per_class);
        }
    }

    #[test]
    fn kb_covers_only_head_entities() {
        let w = tiny_world();
        for class in CLASS_KEYS {
            assert_eq!(w.kb().class_instance_count(class), Scale::tiny().kb_entities_per_class);
        }
        for e in w.entities.iter() {
            if e.in_kb && !e.confusable {
                assert!(w.instance_for_entity(e.id).is_some(), "head entity missing instance");
            } else {
                assert!(w.instance_for_entity(e.id).is_none(), "tail entity has instance");
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_world(&GeneratorConfig::new(Scale::tiny(), 99));
        let b = generate_world(&GeneratorConfig::new(Scale::tiny(), 99));
        assert_eq!(a.entities, b.entities);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_world(&GeneratorConfig::new(Scale::tiny(), 1));
        let b = generate_world(&GeneratorConfig::new(Scale::tiny(), 2));
        assert_ne!(a.entities, b.entities);
    }

    #[test]
    fn every_entity_has_all_schema_facts() {
        let w = tiny_world();
        for class in CLASS_KEYS {
            for e in w.entities_of_class(class) {
                assert_eq!(
                    e.facts.len(),
                    class_schema(class).len(),
                    "entity {} missing ground-truth facts",
                    e.canonical_label
                );
            }
        }
    }

    #[test]
    fn kb_facts_respect_density_dropout() {
        let w = generate_world(&GeneratorConfig::new(Scale::gold(), 3));
        // Settlement elevation has density ~0.31; postalCode ~0.33; so their
        // fact counts should be well below the instance count, while country
        // (0.925) should be close to it.
        let kb = w.kb();
        let n = kb.class_instance_count(ClassKey::Settlement) as f64;
        let country = kb.property_by_name(ClassKey::Settlement, "country").unwrap().id;
        let elevation = kb.property_by_name(ClassKey::Settlement, "elevation").unwrap().id;
        let country_count = kb.property_values(country).len() as f64;
        let elevation_count = kb.property_values(elevation).len() as f64;
        assert!(country_count / n > 0.8, "country density too low: {}", country_count / n);
        assert!(elevation_count / n < 0.55, "elevation density too high: {}", elevation_count / n);
    }

    #[test]
    fn songs_have_more_homonyms_than_settlements() {
        let w = generate_world(&GeneratorConfig::new(Scale::gold(), 5));
        let homonym_fraction = |class: ClassKey| {
            let entities = w.entities_of_class(class);
            let mut group_sizes: HashMap<u64, usize> = HashMap::new();
            for e in &entities {
                *group_sizes.entry(e.homonym_group).or_insert(0) += 1;
            }
            let in_homonym: usize =
                group_sizes.values().filter(|&&s| s > 1).copied().sum();
            in_homonym as f64 / entities.len() as f64
        };
        assert!(
            homonym_fraction(ClassKey::Song) > homonym_fraction(ClassKey::Settlement),
            "songs should be more homonymous"
        );
    }

    #[test]
    fn head_entities_are_more_popular_than_tail() {
        let w = tiny_world();
        for class in CLASS_KEYS {
            let head_avg: f64 = w.head_of_class(class).iter().map(|e| e.popularity as f64).sum::<f64>()
                / Scale::tiny().kb_entities_per_class as f64;
            let tail_avg: f64 = w.long_tail_of_class(class).iter().map(|e| e.popularity as f64).sum::<f64>()
                / Scale::tiny().long_tail_per_class as f64;
            assert!(head_avg > tail_avg, "{class}: head {head_avg} vs tail {tail_avg}");
        }
    }

    #[test]
    fn abstracts_mention_class_specific_phrases() {
        let w = tiny_world();
        let player = &w.entities_of_class(ClassKey::GridironFootballPlayer)[0];
        let kb_inst = w.instance_for_entity(player.id);
        if let Some(id) = kb_inst {
            let inst = w.kb().instance(id).unwrap();
            assert!(inst.abstract_text.contains("American football"));
        }
    }

    #[test]
    fn entity_lookup_by_id() {
        let w = tiny_world();
        let e = &w.entities[5];
        assert_eq!(w.entity(e.id).unwrap().canonical_label, e.canonical_label);
        assert!(w.entity(EntityId(u64::MAX)).is_none());
    }

    #[test]
    fn labels_include_canonical_first() {
        let w = tiny_world();
        for e in &w.entities {
            assert_eq!(e.labels()[0], e.canonical_label);
        }
    }
}
