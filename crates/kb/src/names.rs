//! Name pools used by the synthetic world generator.
//!
//! The pools are combinatorial: labels are assembled from parts so that the
//! generator can create tens of thousands of distinct, plausible labels per
//! class while still being able to deliberately create homonyms (identical
//! labels for different entities, the main difficulty the paper reports for
//! the Song class).

/// First names used for football players and song writers.
pub const FIRST_NAMES: &[&str] = &[
    "James", "Michael", "Robert", "John", "David", "William", "Richard", "Joseph", "Thomas",
    "Christopher", "Charles", "Daniel", "Matthew", "Anthony", "Mark", "Donald", "Steven", "Andrew",
    "Paul", "Joshua", "Kenneth", "Kevin", "Brian", "Timothy", "Ronald", "Jason", "George", "Edward",
    "Jeffrey", "Ryan", "Jacob", "Nicholas", "Gary", "Eric", "Jonathan", "Stephen", "Larry", "Justin",
    "Scott", "Brandon", "Benjamin", "Samuel", "Gregory", "Alexander", "Patrick", "Frank", "Raymond",
    "Jack", "Dennis", "Jerry", "Tyler", "Aaron", "Jose", "Adam", "Nathan", "Henry", "Zachary",
    "Douglas", "Peter", "Kyle", "Noah", "Ethan", "Jeremy", "Walter", "Christian", "Keith", "Roger",
    "Terry", "Austin", "Sean", "Gerald", "Carl", "Harold", "Dylan", "Arthur", "Lawrence", "Jordan",
    "Jesse", "Bryan", "Billy", "Bruce", "Gabriel", "Joe", "Logan", "Alan", "Juan", "Albert",
    "Willie", "Elijah", "Wayne", "Randy", "Vincent", "Mason", "Roy", "Ralph", "Bobby", "Russell",
];

/// Last names used for football players, writers and artists.
pub const LAST_NAMES: &[&str] = &[
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis", "Rodriguez",
    "Martinez", "Hernandez", "Lopez", "Gonzalez", "Wilson", "Anderson", "Thomas", "Taylor", "Moore",
    "Jackson", "Martin", "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez", "Clark",
    "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King", "Wright", "Scott", "Torres",
    "Nguyen", "Hill", "Flores", "Green", "Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell",
    "Mitchell", "Carter", "Roberts", "Gomez", "Phillips", "Evans", "Turner", "Diaz", "Parker",
    "Cruz", "Edwards", "Collins", "Reyes", "Stewart", "Morris", "Morales", "Murphy", "Cook",
    "Rogers", "Gutierrez", "Ortiz", "Morgan", "Cooper", "Peterson", "Bailey", "Reed", "Kelly",
    "Howard", "Ramos", "Kim", "Cox", "Ward", "Richardson", "Watson", "Brooks", "Chavez", "Wood",
    "James", "Bennett", "Gray", "Mendoza", "Ruiz", "Hughes", "Price", "Alvarez", "Castillo",
    "Sanders", "Patel", "Myers", "Long", "Ross", "Foster", "Jimenez",
];

/// Words used to assemble song titles.
pub const SONG_TITLE_WORDS: &[&str] = &[
    "Love", "Night", "Heart", "Dream", "Fire", "Rain", "Summer", "Dance", "Light", "Shadow",
    "River", "Road", "Home", "Blue", "Golden", "Wild", "Broken", "Silent", "Electric", "Midnight",
    "Forever", "Yesterday", "Tomorrow", "Angel", "Devil", "Ocean", "Mountain", "City", "Star",
    "Moon", "Sun", "Storm", "Wind", "Ghost", "Echo", "Mirror", "Paradise", "Heaven", "Highway",
    "Diamond", "Crystal", "Velvet", "Neon", "Winter", "Autumn", "Morning", "Evening", "Falling",
    "Rising", "Running", "Waiting", "Burning", "Crying", "Singing", "Whisper", "Thunder", "Lonely",
    "Sweet", "Bitter", "Lost", "Found", "Young", "Old", "Free", "Blind", "Holy", "Sacred",
];

/// Name stems used to assemble settlement names.
pub const SETTLEMENT_STEMS: &[&str] = &[
    "Spring", "Oak", "Maple", "Cedar", "Pine", "River", "Lake", "Hill", "Green", "Fair", "Mill",
    "Stone", "Clear", "Bridge", "North", "South", "East", "West", "New", "Old", "Mount", "Glen",
    "Ash", "Birch", "Elm", "Forest", "Meadow", "Brook", "Cliff", "Sand", "Rock", "Silver", "Gold",
    "Iron", "Copper", "Salt", "Sun", "Moon", "Star", "Wolf", "Bear", "Eagle", "Deer", "Fox",
    "Haven", "Harbor", "Port", "Bay", "Cross", "Church", "King", "Queen", "Bishop", "Abbot",
];

/// Name suffixes used to assemble settlement names.
pub const SETTLEMENT_SUFFIXES: &[&str] = &[
    "ville", "ton", "burg", "field", "wood", "dale", "ford", "port", "mouth", "stead", "ham",
    "worth", "bury", "ridge", "crest", "view", "side", "creek", "falls", "springs", "heights",
    "grove", "hollow", "landing", "crossing", "junction", "city", "town",
];

/// NFL-style team names (instance references for the `team` property).
pub const TEAMS: &[&str] = &[
    "Arrowhead Chiefs", "Bay Mariners", "Capital Senators", "Desert Scorpions", "Emerald Knights",
    "Frontier Rangers", "Granite Bears", "Harbor Sharks", "Ironclad Titans", "Jetstream Hawks",
    "Keystone Stags", "Lakeside Wolves", "Midland Mustangs", "Northern Lights", "Oakland Raptors",
    "Prairie Bison", "Quarry Miners", "Ridgeline Cougars", "Summit Eagles", "Tidewater Dolphins",
    "Union Pioneers", "Valley Vipers", "Westgate Warriors", "Yellowstone Grizzlies",
    "Zenith Falcons", "Copper Canyon Coyotes", "Steel City Forgers", "Gulf Coast Pelicans",
    "Twin Rivers Otters", "High Plains Drifters", "Crescent City Cranes", "Redwood Giants",
];

/// College names (instance references for the `college` property).
pub const COLLEGES: &[&str] = &[
    "Ashford State University", "Blue Ridge College", "Carverton University", "Dunmore State",
    "Eastlake University", "Fairmont College", "Grandview State University", "Hollis University",
    "Ironwood State", "Jasper College", "Kingsbridge University", "Lakewood State",
    "Merribrook University", "Northfield State", "Oakhurst College", "Pinecrest University",
    "Quincy State", "Riverbend University", "Stonewall College", "Thornton State University",
    "Umberland University", "Vandorn College", "Westbrook State", "Yarrow University",
    "Zephyr State College", "Millbrook Tech", "Harborview A&M", "Summit Valley University",
];

/// Player positions (nominal strings for the `position` property).
pub const POSITIONS: &[&str] = &[
    "QB", "RB", "FB", "WR", "TE", "OT", "OG", "C", "DE", "DT", "LB", "CB", "S", "K", "P", "LS",
];

/// Musical artists (instance references for the `musicalArtist` property).
pub const ARTISTS: &[&str] = &[
    "The Midnight Ramblers", "Silver Lining", "Echo Chamber", "The Velvet Crows", "Neon Harvest",
    "Paper Lanterns", "The Rust Belt Revival", "Glass Animals Club", "Hollow Pines",
    "The Electric Prophets", "Marigold Parade", "Static Bloom", "The Northern Sons",
    "Cobalt Skies", "The Wandering Minstrels", "Ivory Coastline", "The Broken Compass",
    "Scarlet Monsoon", "The Drifting Embers", "Crystal Canyon", "The Late Night Owls",
    "Amber Waves", "The Quiet Storm Collective", "Prairie Fire", "The Lunar Tides",
    "Golden Hour Band", "The Restless Hearts", "Sapphire Rain", "The Vagabond Kings",
    "Willow and the Wisps", "The Falling Leaves", "Harbor Lights Orchestra",
];

/// Record labels (instance references for the `recordLabel` property).
pub const RECORD_LABELS: &[&str] = &[
    "Sunburst Records", "Bluebird Music", "Crescent Records", "Darkwater Recordings",
    "Evergreen Sound", "Foxglove Records", "Galaxy Music Group", "Horizon Records",
    "Indigo Recordings", "Juniper Music", "Keystone Sound", "Lighthouse Records",
    "Monarch Music", "Nightingale Records", "Orchard Lane Music", "Paramount Hill Records",
];

/// Music genres (nominal strings for the `genre` property).
pub const GENRES: &[&str] = &[
    "Rock", "Pop", "Country", "Hip hop", "Jazz", "Blues", "Folk", "Electronic", "R&B", "Soul",
    "Indie rock", "Alternative rock", "Punk rock", "Heavy metal", "Reggae", "Gospel", "Funk",
    "Disco", "House", "Ambient",
];

/// Album title prefixes (instance references for the `album` property are
/// assembled from these plus a numeric suffix).
pub const ALBUM_WORDS: &[&str] = &[
    "Chronicles", "Reflections", "Horizons", "Departures", "Arrivals", "Fragments", "Monuments",
    "Postcards", "Souvenirs", "Wanderlust", "Aftermath", "Origins", "Echoes", "Mosaic", "Tapestry",
    "Odyssey", "Voyages", "Seasons", "Elements", "Visions",
];

/// Countries (instance references for the `country` property).
pub const COUNTRIES: &[&str] = &[
    "United States", "Canada", "United Kingdom", "Germany", "France", "Italy", "Spain", "Poland",
    "Sweden", "Norway", "Austria", "Switzerland", "Australia", "New Zealand", "Ireland",
    "Netherlands", "Belgium", "Portugal", "Czech Republic", "Hungary",
];

/// Regions / administrative units (instance references for `isPartOf`).
pub const REGIONS: &[&str] = &[
    "Clearwater County", "Highland Region", "Ostmark District", "Lakeland Province",
    "Northgate County", "Southfield Region", "Western Territory", "Eastvale Province",
    "Midland County", "Redstone District", "Bluewater Region", "Greenfield Province",
    "Stonebridge County", "Fairhaven District", "Silverlake Region", "Oakmont Province",
    "Riverside County", "Hillcrest District", "Maplewood Region", "Pinehurst Province",
    "Ashford County", "Brookside District", "Cedarvale Region", "Dovermoor Province",
];

/// Cities used as birth places (instance references for `birthPlace`).
pub const BIRTH_CITIES: &[&str] = &[
    "Springfield", "Riverton", "Fairview", "Georgetown", "Salem", "Madison", "Clinton",
    "Franklin", "Arlington", "Centerville", "Lebanon", "Ashland", "Burlington", "Manchester",
    "Oxford", "Clayton", "Jackson", "Milton", "Auburn", "Dayton", "Lexington", "Milford",
    "Newport", "Kingston", "Dover", "Hudson", "Trenton", "Bristol", "Florence", "Troy",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_nonempty_and_deduplicated() {
        for (name, pool) in [
            ("FIRST_NAMES", FIRST_NAMES),
            ("LAST_NAMES", LAST_NAMES),
            ("SONG_TITLE_WORDS", SONG_TITLE_WORDS),
            ("SETTLEMENT_STEMS", SETTLEMENT_STEMS),
            ("SETTLEMENT_SUFFIXES", SETTLEMENT_SUFFIXES),
            ("TEAMS", TEAMS),
            ("COLLEGES", COLLEGES),
            ("POSITIONS", POSITIONS),
            ("ARTISTS", ARTISTS),
            ("RECORD_LABELS", RECORD_LABELS),
            ("GENRES", GENRES),
            ("ALBUM_WORDS", ALBUM_WORDS),
            ("COUNTRIES", COUNTRIES),
            ("REGIONS", REGIONS),
            ("BIRTH_CITIES", BIRTH_CITIES),
        ] {
            assert!(!pool.is_empty(), "{name} is empty");
            let distinct: std::collections::HashSet<_> = pool.iter().collect();
            assert_eq!(distinct.len(), pool.len(), "{name} has duplicates");
        }
    }

    #[test]
    fn player_name_space_is_large_enough_for_profiling_scale() {
        // first x last gives ~10k combinations before suffixes; the generator
        // additionally appends disambiguating middle initials when needed.
        assert!(FIRST_NAMES.len() * LAST_NAMES.len() >= 9_000);
    }

    #[test]
    fn settlement_name_space_is_large() {
        assert!(SETTLEMENT_STEMS.len() * SETTLEMENT_SUFFIXES.len() >= 1_000);
    }
}
