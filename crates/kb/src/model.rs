//! The in-memory knowledge base: classes, properties, instances and facts.

use std::collections::HashMap;

use ltee_index::LabelIndex;
use ltee_types::{DataType, Value};
use serde::{Deserialize, Serialize};

use crate::ids::{ClassId, InstanceId, PropertyId};
use crate::schema::ClassKey;

/// A class in the knowledge base with its position in the hierarchy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnowledgeBaseClass {
    /// Class identifier.
    pub id: ClassId,
    /// Which of the target classes this is.
    pub key: ClassKey,
    /// Class name.
    pub name: String,
    /// Names of all ancestor classes (most specific first, ending in Thing).
    pub ancestors: Vec<String>,
}

/// A property of a knowledge base class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Property {
    /// Property identifier.
    pub id: PropertyId,
    /// Owning class.
    pub class: ClassKey,
    /// Property name (e.g. `birthDate`).
    pub name: String,
    /// Data type of the property's values.
    pub data_type: DataType,
    /// Human readable label (used by the KB-Label matcher).
    pub label: String,
}

/// A fact: a typed value for one property of one instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fact {
    /// The property the value belongs to.
    pub property: PropertyId,
    /// The value.
    pub value: Value,
}

/// An instance of the knowledge base.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    /// Instance identifier.
    pub id: InstanceId,
    /// Class of the instance.
    pub class: ClassKey,
    /// Canonical label plus alternative labels (canonical first).
    pub labels: Vec<String>,
    /// A short textual abstract (used by the `BOW` entity-to-instance metric).
    pub abstract_text: String,
    /// Number of incoming page links (popularity proxy, used by the
    /// `POPULARITY` metric).
    pub page_links: u64,
    /// The instance's facts.
    pub facts: Vec<Fact>,
}

impl Instance {
    /// The canonical (first) label.
    pub fn canonical_label(&self) -> &str {
        self.labels.first().map(String::as_str).unwrap_or("")
    }

    /// The fact value for a property, if present.
    pub fn fact(&self, property: PropertyId) -> Option<&Value> {
        self.facts.iter().find(|f| f.property == property).map(|f| &f.value)
    }
}

/// The knowledge base: the DBpedia stand-in the pipeline extends.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KnowledgeBase {
    classes: Vec<KnowledgeBaseClass>,
    properties: Vec<Property>,
    instances: Vec<Instance>,
    /// instance id -> index into `instances`.
    #[serde(skip)]
    instance_lookup: HashMap<InstanceId, usize>,
    /// (class, property name) -> property id.
    #[serde(skip)]
    property_lookup: HashMap<(ClassKey, String), PropertyId>,
}

impl KnowledgeBase {
    /// Create an empty knowledge base.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a class.
    pub fn add_class(&mut self, key: ClassKey) -> ClassId {
        let id = ClassId(self.classes.len() as u64);
        self.classes.push(KnowledgeBaseClass {
            id,
            key,
            name: key.name().to_string(),
            ancestors: key.ancestors().iter().map(|s| s.to_string()).collect(),
        });
        id
    }

    /// Register a property of a class.
    pub fn add_property(&mut self, class: ClassKey, name: &str, data_type: DataType, label: &str) -> PropertyId {
        let id = PropertyId(self.properties.len() as u64);
        self.properties.push(Property {
            id,
            class,
            name: name.to_string(),
            data_type,
            label: label.to_string(),
        });
        self.property_lookup.insert((class, name.to_string()), id);
        id
    }

    /// Add an instance (facts included) and return its id.
    pub fn add_instance(
        &mut self,
        class: ClassKey,
        labels: Vec<String>,
        abstract_text: String,
        page_links: u64,
        facts: Vec<Fact>,
    ) -> InstanceId {
        let id = InstanceId(self.instances.len() as u64);
        self.instance_lookup.insert(id, self.instances.len());
        self.instances.push(Instance { id, class, labels, abstract_text, page_links, facts });
        id
    }

    /// Rebuild the internal lookup tables (needed after deserialisation).
    pub fn rebuild_lookups(&mut self) {
        self.instance_lookup =
            self.instances.iter().enumerate().map(|(i, inst)| (inst.id, i)).collect();
        self.property_lookup = self
            .properties
            .iter()
            .map(|p| ((p.class, p.name.clone()), p.id))
            .collect();
    }

    /// All classes.
    pub fn classes(&self) -> &[KnowledgeBaseClass] {
        &self.classes
    }

    /// All properties.
    pub fn properties(&self) -> &[Property] {
        &self.properties
    }

    /// Properties of one class.
    pub fn class_properties(&self, class: ClassKey) -> Vec<&Property> {
        self.properties.iter().filter(|p| p.class == class).collect()
    }

    /// Look up a property by class and name.
    pub fn property_by_name(&self, class: ClassKey, name: &str) -> Option<&Property> {
        self.property_lookup
            .get(&(class, name.to_string()))
            .and_then(|id| self.properties.get(id.0 as usize))
    }

    /// Look up a property by id.
    pub fn property(&self, id: PropertyId) -> Option<&Property> {
        self.properties.get(id.0 as usize)
    }

    /// All instances.
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Instances of one class.
    pub fn class_instances(&self, class: ClassKey) -> Vec<&Instance> {
        self.instances.iter().filter(|i| i.class == class).collect()
    }

    /// Look up an instance by id.
    pub fn instance(&self, id: InstanceId) -> Option<&Instance> {
        self.instance_lookup.get(&id).map(|&i| &self.instances[i])
    }

    /// The canonical label of an instance, if the instance exists. Used by
    /// the serving layer to project "linked to existing instance" results
    /// into self-contained records (snapshots must not borrow the KB).
    pub fn instance_label(&self, id: InstanceId) -> Option<&str> {
        self.instance(id).map(Instance::canonical_label)
    }

    /// Number of instances of a class.
    pub fn class_instance_count(&self, class: ClassKey) -> usize {
        self.instances.iter().filter(|i| i.class == class).count()
    }

    /// Number of facts of a class (across all its instances).
    pub fn class_fact_count(&self, class: ClassKey) -> usize {
        self.instances.iter().filter(|i| i.class == class).map(|i| i.facts.len()).sum()
    }

    /// Build a label index over all instances of a class (used by new
    /// detection candidate selection and by the IMPLICIT_ATT metric).
    pub fn label_index(&self, class: ClassKey) -> LabelIndex {
        let mut idx = LabelIndex::new();
        for inst in self.instances.iter().filter(|i| i.class == class) {
            for label in &inst.labels {
                idx.insert(inst.id.raw(), label);
            }
        }
        idx
    }

    /// All distinct values of a property across the knowledge base, used by
    /// the KB-Overlap matcher to test whether a column's values "generally
    /// fit" a property.
    pub fn property_values(&self, property: PropertyId) -> Vec<&Value> {
        self.instances
            .iter()
            .flat_map(|i| i.facts.iter())
            .filter(|f| f.property == property)
            .map(|f| &f.value)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltee_types::Date;

    fn tiny_kb() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        kb.add_class(ClassKey::Song);
        let artist = kb.add_property(ClassKey::Song, "musicalArtist", DataType::InstanceReference, "artist");
        let runtime = kb.add_property(ClassKey::Song, "runtime", DataType::Quantity, "length");
        kb.add_instance(
            ClassKey::Song,
            vec!["Yellow Submarine".into(), "Yellow Submarine (song)".into()],
            "A song by the Beatles from 1966.".into(),
            500,
            vec![
                Fact { property: artist, value: Value::InstanceRef("The Beatles".into()) },
                Fact { property: runtime, value: Value::Quantity(159.0) },
            ],
        );
        kb.add_instance(
            ClassKey::Song,
            vec!["Let It Be".into()],
            "A song by the Beatles from 1970.".into(),
            800,
            vec![Fact { property: artist, value: Value::InstanceRef("The Beatles".into()) }],
        );
        kb
    }

    #[test]
    fn counts_instances_and_facts() {
        let kb = tiny_kb();
        assert_eq!(kb.class_instance_count(ClassKey::Song), 2);
        assert_eq!(kb.class_fact_count(ClassKey::Song), 3);
        assert_eq!(kb.class_instance_count(ClassKey::Settlement), 0);
    }

    #[test]
    fn property_lookup_by_name() {
        let kb = tiny_kb();
        let p = kb.property_by_name(ClassKey::Song, "runtime").unwrap();
        assert_eq!(p.data_type, DataType::Quantity);
        assert!(kb.property_by_name(ClassKey::Song, "nonexistent").is_none());
    }

    #[test]
    fn instance_lookup_and_fact_access() {
        let kb = tiny_kb();
        let first = kb.instances()[0].id;
        let inst = kb.instance(first).unwrap();
        assert_eq!(inst.canonical_label(), "Yellow Submarine");
        let runtime = kb.property_by_name(ClassKey::Song, "runtime").unwrap().id;
        assert_eq!(inst.fact(runtime), Some(&Value::Quantity(159.0)));
        let artist = kb.property_by_name(ClassKey::Song, "musicalArtist").unwrap().id;
        assert!(inst.fact(artist).is_some());
    }

    #[test]
    fn label_index_covers_alternative_labels() {
        let kb = tiny_kb();
        let idx = kb.label_index(ClassKey::Song);
        assert_eq!(idx.len(), 3);
        let ids = idx.lookup_ids("yellow submarine", 3);
        assert!(ids.contains(&kb.instances()[0].id.raw()));
    }

    #[test]
    fn instance_label_projects_canonical_label() {
        let kb = tiny_kb();
        let first = kb.instances()[0].id;
        assert_eq!(kb.instance_label(first), Some("Yellow Submarine"));
        assert_eq!(kb.instance_label(crate::ids::InstanceId(999)), None);
    }

    #[test]
    fn property_values_collects_across_instances() {
        let kb = tiny_kb();
        let artist = kb.property_by_name(ClassKey::Song, "musicalArtist").unwrap().id;
        assert_eq!(kb.property_values(artist).len(), 2);
    }

    #[test]
    fn rebuild_lookups_restores_access() {
        let mut kb = tiny_kb();
        let id = kb.instances()[1].id;
        kb.rebuild_lookups();
        assert_eq!(kb.instance(id).unwrap().canonical_label(), "Let It Be");
        assert!(kb.property_by_name(ClassKey::Song, "runtime").is_some());
    }

    #[test]
    fn class_properties_filters_by_class() {
        let kb = tiny_kb();
        assert_eq!(kb.class_properties(ClassKey::Song).len(), 2);
        assert!(kb.class_properties(ClassKey::Settlement).is_empty());
    }

    #[test]
    fn facts_can_be_dates() {
        let mut kb = tiny_kb();
        let rel = kb.add_property(ClassKey::Song, "releaseDate", DataType::Date, "released");
        kb.add_instance(
            ClassKey::Song,
            vec!["Hey Jude".into()],
            String::new(),
            900,
            vec![Fact { property: rel, value: Value::Date(Date::year(1968)) }],
        );
        let inst = kb.instances().last().unwrap();
        assert_eq!(inst.fact(rel).unwrap().as_date().unwrap().year, 1968);
    }
}
