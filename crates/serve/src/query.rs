//! The query surface: one request/response vocabulary plus batched
//! execution on the work-stealing pool.
//!
//! Queries are plain data so callers (and tests) can build workloads,
//! replay them against historical snapshot versions, and compare responses
//! structurally. [`KbSnapshot::execute_batch`] fans a batch out over the
//! global rayon-compatible pool; responses come back in request order and
//! are bit-identical to executing each query sequentially (the pool's
//! determinism contract).

use ltee_kb::ClassKey;
use rayon::prelude::*;

use crate::snapshot::{ClassPage, EntityRecord, KbSnapshot, SnapshotStats};

/// A reference to one served entity inside a specific snapshot version:
/// the class plus the record's position in the class's cluster order.
///
/// References are only meaningful against the snapshot (version) that
/// produced them — a later version may have re-fused the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntityRef {
    /// The entity's class.
    pub class: ClassKey,
    /// Record position within the class snapshot.
    pub id: u32,
}

/// One label-lookup hit.
#[derive(Debug, Clone, PartialEq)]
pub struct EntityHit {
    /// The matched entity.
    pub entity: EntityRef,
    /// Ranking score in `[0, 1]` (1.0 for exact-block hits).
    pub score: f64,
    /// The label the match surfaced: the record's canonical label for
    /// exact hits, the matched normalised label for fuzzy hits.
    pub label: String,
}

/// One read request against a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Entities whose normalised label equals the normalised query
    /// (`class: None` searches every class).
    Exact {
        /// Restrict to one class, or search all.
        class: Option<ClassKey>,
        /// The queried label.
        label: String,
    },
    /// Fuzzy top-k label lookup (`class: None` merges across classes).
    Fuzzy {
        /// Restrict to one class, or search all.
        class: Option<ClassKey>,
        /// The queried label.
        label: String,
        /// Maximum hits to return.
        k: usize,
    },
    /// Fetch one entity record (fused facts + provenance + link verdict).
    Entity {
        /// The entity to fetch.
        entity: EntityRef,
    },
    /// One page of a class's entities in cluster order.
    List {
        /// The class to list.
        class: ClassKey,
        /// Zero-based offset into the class's records.
        offset: usize,
        /// Maximum records on the page.
        limit: usize,
    },
    /// Aggregate snapshot figures.
    Stats,
}

/// The response to one [`Query`], same variant order.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    /// Response to [`Query::Exact`] and [`Query::Fuzzy`].
    Hits(Vec<EntityHit>),
    /// Response to [`Query::Entity`]; `None` when the reference does not
    /// exist in this snapshot version.
    Entity(Option<EntityRecord>),
    /// Response to [`Query::List`].
    Page(ClassPage),
    /// Response to [`Query::Stats`].
    Stats(SnapshotStats),
}

impl KbSnapshot {
    /// Execute one query against this snapshot version.
    pub fn execute(&self, query: &Query) -> QueryOutput {
        match query {
            Query::Exact { class, label } => QueryOutput::Hits(self.exact_lookup(*class, label)),
            Query::Fuzzy { class, label, k } => {
                QueryOutput::Hits(self.fuzzy_lookup(*class, label, *k))
            }
            Query::Entity { entity } => QueryOutput::Entity(self.entity(*entity).cloned()),
            Query::List { class, offset, limit } => {
                QueryOutput::Page(self.list_class(*class, *offset, *limit))
            }
            Query::Stats => QueryOutput::Stats(self.stats()),
        }
    }

    /// Execute a batch of queries on the work-stealing pool, returning
    /// responses in request order. Results are bit-identical to calling
    /// [`KbSnapshot::execute`] per query in order — at any thread count —
    /// because every query reads the same immutable snapshot and the pool
    /// collects in input order.
    pub fn execute_batch(&self, queries: &[Query]) -> Vec<QueryOutput> {
        queries.par_iter().map(|q| self.execute(q)).collect()
    }
}
