//! # ltee-serve
//!
//! The consumption surface of the LTEE reproduction: a snapshot-isolated,
//! read-concurrent query layer over the incremental serve pipeline.
//!
//! The papers this repository reproduces (and the T2K / WDC table-matching
//! line of work around them) all assume the extended knowledge base is
//! *queryable* — an endpoint applications hit for lookups — while new web
//! tables keep arriving. This crate closes that gap:
//!
//! * [`ServePipeline`] wraps an [`IncrementalPipeline`]: every ingested
//!   micro-batch publishes a new immutable [`KbSnapshot`] version.
//! * [`SnapshotReader`] handles are cheap to clone, `Send + 'static`, and
//!   **wait-free**: [`SnapshotReader::snapshot`] never blocks, never takes
//!   a lock, and never observes a partially ingested batch — each returned
//!   `Arc<KbSnapshot>` is one consistent KB version, pinned for as long as
//!   the reader holds it. A handle carries its own reclamation-epoch slot
//!   and so is deliberately `!Sync`: clone one per reader thread instead
//!   of sharing a reference (see [`cell`] for the mechanism).
//! * Superseded versions are **reclaimed**: memory stays bounded by the
//!   [`RetentionPolicy`] window (default: keep the last 8 versions) under
//!   indefinite ingest, instead of growing with version count. Replay via
//!   [`SnapshotReader::snapshot_at`] works inside the window and is a
//!   typed [`SnapshotAtError::VersionReclaimed`] outside it.
//! * Snapshots answer exact and fuzzy label lookups (over the interned,
//!   integer-keyed postings of [`ltee_index::SharedLabelIndex`]), entity
//!   fetches with fused facts plus full table provenance, per-class
//!   listing/paging, aggregate stats — singly or as a batch fanned out on
//!   the work-stealing pool ([`KbSnapshot::execute_batch`]).
//!
//! ## Consistency contract
//!
//! * **Versioned**: versions start at 0 (empty) and increase by exactly 1
//!   per published ingest.
//! * **Snapshot isolation**: every query (and every batch of queries) runs
//!   against exactly one version; concurrent ingest affects only *later*
//!   `snapshot()` calls.
//! * **Reader wait-freedom**: acquiring a snapshot is an epoch pin (two
//!   atomic stores), an atomic pointer load and a reference-count
//!   increment, independent of writer activity.
//! * **Bounded retention**: a version a reader holds an `Arc` to lives as
//!   long as that `Arc`; a version nobody pinned is reclaimed once it
//!   falls out of the retention window, so resident memory is
//!   O(window × class size), not O(versions × class size).
//! * **Determinism**: querying a version returns bit-identical results no
//!   matter how many readers run concurrently or how the pool is sized —
//!   snapshots are immutable and batch collection is input-ordered.
//!
//! ```no_run
//! use ltee_core::prelude::*;
//! use ltee_serve::{Query, ServePipeline};
//!
//! # let world = generate_world(&GeneratorConfig::new(Scale::tiny(), 7));
//! # let corpus = generate_corpus(&world, &CorpusConfig::tiny());
//! # let golds: Vec<GoldStandard> =
//! #     CLASS_KEYS.iter().map(|&c| GoldStandard::build(&world, &corpus, c)).collect();
//! let config = PipelineConfig::fast();
//! let models = train_models(&corpus, world.kb(), &golds, &config).expect("trainable corpus");
//! let mut serving = ServePipeline::new(world.kb(), models, config);
//!
//! // Reader threads query a consistent version while batches ingest.
//! let reader = serving.reader();
//! std::thread::spawn(move || {
//!     let snap = reader.snapshot(); // pinned version, wait-free
//!     let hits = snap.fuzzy_lookup(None, "yellow submarine", 5);
//!     println!("v{}: {} hits", snap.version(), hits.len());
//! });
//! for batch in corpus.split_into_batches(4) {
//!     serving.ingest(&batch).expect("fresh table ids");
//! }
//! ```

#![warn(missing_docs)]

pub mod cell;
pub mod durable;
pub mod query;
pub mod snapshot;

pub use cell::{ReaderSlot, RetentionPolicy, SnapshotAtError, SnapshotCell};
pub use durable::{CheckpointPolicy, DurableServePipeline, RecoveryReport};
pub use query::{EntityHit, EntityRef, Query, QueryOutput};
pub use snapshot::{
    ClassPage, ClassSnapshot, ClassStats, EntityRecord, KbSnapshot, LinkOutcome, SnapshotStats,
};

use std::sync::Arc;

use ltee_core::{
    ArtifactError, IncrementalPipeline, IngestReport, ModelArtifact, PipelineConfig, PipelineError,
    TrainedModels,
};
use ltee_kb::{ClassKey, KnowledgeBase, CLASS_KEYS};
use ltee_webtables::Corpus;
use rayon::prelude::*;

/// Build the class projections for `classes` concurrently on the
/// work-stealing pool, returning `(slot, projection)` pairs in input order
/// (the pool collects in input order, so publication stays deterministic
/// at every shard/thread count). Used by ingest-time publication — where
/// the classes are the batch's touched classes — and by recovery, where
/// every populated class rebuilds at once.
fn build_class_slices(
    kb: &KnowledgeBase,
    pipeline: &IncrementalPipeline<'_>,
    classes: &[ClassKey],
) -> Vec<(usize, Arc<ClassSnapshot>)> {
    classes
        .par_iter()
        .map(|&class| {
            let slot = CLASS_KEYS
                .iter()
                .position(|&c| c == class)
                .expect("projected classes come from CLASS_KEYS");
            let (entities, results) = pipeline
                .class_entities(class)
                .expect("a projected class has at least one cluster");
            (slot, Arc::new(ClassSnapshot::build(kb, class, entities, results)))
        })
        .collect()
}

/// The serving end of the train-once / serve-many split: an
/// [`IncrementalPipeline`] that publishes an immutable [`KbSnapshot`]
/// version after every ingested micro-batch.
///
/// Ingest is exclusive (`&mut self`); reads go through [`SnapshotReader`]
/// handles, which are independent of the pipeline's lifetime and can be
/// handed to any number of threads. Publication rebuilds only the
/// per-class projections the batch touched ([`IngestReport::touched_classes`])
/// and shares the rest with the previous version.
#[derive(Debug)]
pub struct ServePipeline<'a> {
    kb: &'a KnowledgeBase,
    pipeline: IncrementalPipeline<'a>,
    cell: Arc<SnapshotCell>,
    /// Per-[`CLASS_KEYS`] slot cache of the latest class projections;
    /// untouched slots carry over into the next published version.
    class_cache: Vec<Option<Arc<ClassSnapshot>>>,
}

impl<'a> ServePipeline<'a> {
    /// Create a serving pipeline from freshly trained models, with the
    /// default [`RetentionPolicy`] (keep the last
    /// [`RetentionPolicy::DEFAULT_KEEP_LAST`] versions). Publishes the
    /// empty version-0 snapshot immediately, so readers acquired before
    /// the first ingest see a valid (empty) KB.
    pub fn new(kb: &'a KnowledgeBase, models: TrainedModels, config: PipelineConfig) -> Self {
        Self::with_retention(kb, models, config, RetentionPolicy::default())
    }

    /// [`ServePipeline::new`] with an explicit [`RetentionPolicy`] — the
    /// knob bounding how many superseded snapshot versions stay resident
    /// (and [`SnapshotReader::snapshot_at`]-replayable) under sustained
    /// ingest.
    pub fn with_retention(
        kb: &'a KnowledgeBase,
        models: TrainedModels,
        config: PipelineConfig,
        retention: RetentionPolicy,
    ) -> Self {
        Self {
            kb,
            pipeline: IncrementalPipeline::new(kb, models, config),
            cell: Arc::new(SnapshotCell::new(Arc::new(KbSnapshot::empty()), retention)),
            class_cache: vec![None; CLASS_KEYS.len()],
        }
    }

    /// Adopt an already-populated pipeline (a checkpoint restore) and
    /// publish its accumulated state as version `version` — the number of
    /// non-empty batches the pipeline has absorbed. Readers acquired after
    /// this see the full recovered KB immediately; versions before
    /// `version` predate this process and were never in this cell's
    /// retention window ([`SnapshotReader::snapshot_at`] reports them as
    /// [`SnapshotAtError::VersionReclaimed`]).
    pub(crate) fn from_pipeline(
        kb: &'a KnowledgeBase,
        pipeline: IncrementalPipeline<'a>,
        version: u64,
        retention: RetentionPolicy,
    ) -> Self {
        let mut class_cache: Vec<Option<Arc<ClassSnapshot>>> = vec![None; CLASS_KEYS.len()];
        let populated: Vec<ClassKey> = CLASS_KEYS
            .iter()
            .copied()
            .filter(|&class| pipeline.class_entities(class).is_some())
            .collect();
        for (slot, slice) in build_class_slices(kb, &pipeline, &populated) {
            class_cache[slot] = Some(slice);
        }
        let initial = Arc::new(KbSnapshot::assemble(
            version,
            pipeline.ingested_tables(),
            pipeline.ingested_rows(),
            class_cache.clone(),
        ));
        Self { kb, pipeline, cell: Arc::new(SnapshotCell::new(initial, retention)), class_cache }
    }

    /// Create a serving pipeline from a persisted artifact (verifying its
    /// config fingerprint, like [`IncrementalPipeline::from_artifact`]).
    pub fn from_artifact(
        kb: &'a KnowledgeBase,
        artifact: &ModelArtifact,
        config: PipelineConfig,
    ) -> Result<Self, ArtifactError> {
        artifact.verify_config(&config)?;
        Ok(Self::new(kb, artifact.models.clone(), config))
    }

    /// Ingest one micro-batch and publish the resulting snapshot version.
    ///
    /// Exactly the semantics (and errors) of
    /// [`IncrementalPipeline::ingest`]; on success with a non-empty batch,
    /// a snapshot with version `self.version() + 1` becomes visible to all
    /// readers atomically. An empty batch stays a no-op and publishes
    /// nothing; a rejected batch (duplicate table id) changes nothing.
    pub fn ingest(&mut self, batch: &Corpus) -> Result<IngestReport, PipelineError> {
        let report = self.pipeline.ingest(batch)?;
        if report.tables == 0 {
            return Ok(report);
        }
        // Rebuild only the touched class projections, concurrently — the
        // per-class builds are independent and collected in input order,
        // so the published snapshot is identical at every pool size.
        for (slot, slice) in build_class_slices(self.kb, &self.pipeline, &report.touched_classes) {
            self.class_cache[slot] = Some(slice);
        }
        // The version is derived from the published sequence (not tracked
        // separately), so the writer's and the readers' view of "latest"
        // can never drift.
        self.cell.publish(Arc::new(KbSnapshot::assemble(
            self.cell.version() + 1,
            self.pipeline.ingested_tables(),
            self.pipeline.ingested_rows(),
            self.class_cache.clone(),
        )));
        Ok(report)
    }

    /// A new reader handle, with its own freshly registered reclamation
    /// slot. Handles are cheap, `Send + 'static`, and remain valid
    /// (serving the current retention window) even while ingests run;
    /// clone one per reader thread.
    pub fn reader(&self) -> SnapshotReader {
        SnapshotReader { slot: self.cell.register_slot(), cell: Arc::clone(&self.cell) }
    }

    /// The current snapshot. The writer's own load — setup and
    /// diagnostics, not the hot read path; reader threads use
    /// [`SnapshotReader::snapshot`], which is the wait-free one.
    pub fn snapshot(&self) -> Arc<KbSnapshot> {
        self.cell.load_writer()
    }

    /// The latest published version number.
    pub fn version(&self) -> u64 {
        self.cell.version()
    }

    /// Free superseded versions whose grace period has passed, without
    /// publishing. Reclamation already runs on every publish; this exists
    /// for quiescent pipelines (ingest stopped, readers drained) that
    /// want limbo emptied now — e.g. before measuring resident memory.
    pub fn reclaim(&mut self) {
        self.cell.reclaim();
    }

    /// Snapshot versions currently resident (retention window + limbo);
    /// see [`SnapshotCell::versions_retained`].
    pub fn versions_retained(&self) -> usize {
        self.cell.versions_retained()
    }

    /// Snapshot versions freed by reclamation so far.
    pub fn versions_reclaimed(&self) -> u64 {
        self.cell.versions_reclaimed()
    }

    /// The oldest version still replayable via
    /// [`SnapshotReader::snapshot_at`].
    pub fn oldest_retained(&self) -> u64 {
        self.cell.oldest_retained()
    }

    /// The pipeline's snapshot [`RetentionPolicy`].
    pub fn retention(&self) -> RetentionPolicy {
        self.cell.retention()
    }

    /// The wrapped incremental pipeline (for ingest-side diagnostics).
    pub fn pipeline(&self) -> &IncrementalPipeline<'a> {
        &self.pipeline
    }
}

/// A read handle onto the published snapshot sequence.
///
/// `Clone + Send + 'static` — and deliberately **`!Sync`**: a handle
/// carries its own registered epoch slot ([`ReaderSlot`]), which
/// serialises one load at a time, so hand every reader thread its own
/// clone rather than a shared reference. Cloning registers a fresh slot
/// (it takes the registry lock briefly — clone per thread, not per
/// query). [`SnapshotReader::snapshot`] pins the latest version
/// wait-free; the pinned snapshot stays fully consistent regardless of
/// concurrent ingests and reclamation, which only ever free versions no
/// handle is mid-load on and no caller still holds.
#[derive(Debug)]
pub struct SnapshotReader {
    cell: Arc<SnapshotCell>,
    slot: ReaderSlot,
}

impl Clone for SnapshotReader {
    fn clone(&self) -> Self {
        Self { slot: self.cell.register_slot(), cell: Arc::clone(&self.cell) }
    }
}

impl SnapshotReader {
    /// The latest published snapshot (wait-free — no locks, no CAS loops,
    /// regardless of concurrent publishes and reclamation).
    pub fn snapshot(&self) -> Arc<KbSnapshot> {
        self.cell.load(&self.slot)
    }

    /// The latest published version number (lock-free).
    pub fn version(&self) -> u64 {
        self.cell.version()
    }

    /// A specific published version, while it remains inside the
    /// retention window; outside it, a typed [`SnapshotAtError`] (see
    /// [`SnapshotCell::snapshot_at`]). Diagnostics/verification only —
    /// takes the retention lock.
    pub fn snapshot_at(&self, version: u64) -> Result<Arc<KbSnapshot>, SnapshotAtError> {
        self.cell.snapshot_at(version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltee_fusion::Entity;
    use ltee_kb::ClassKey;
    use ltee_newdetect::{NewDetectionOutcome, NewDetectionResult};
    use ltee_types::Value;
    use ltee_webtables::{RowRef, TableId};

    /// A KB with one Song instance, plus a two-entity Song class snapshot:
    /// record 0 ("Yellow Submarine") linked to the instance, record 1
    /// ("Octopus Garden", homonym label "Octopus's Garden") new.
    fn sample_snapshot() -> KbSnapshot {
        let mut kb = KnowledgeBase::new();
        kb.add_class(ClassKey::Song);
        let linked = kb.add_instance(
            ClassKey::Song,
            vec!["Yellow Submarine".into()],
            String::new(),
            500,
            vec![],
        );
        let entities = vec![
            Entity {
                class: ClassKey::Song,
                rows: vec![RowRef::new(TableId(3), 0), RowRef::new(TableId(1), 2)],
                labels: vec!["Yellow Submarine".into()],
                facts: vec![("runtime".into(), Value::Quantity(159.0), 2.0)],
            },
            Entity {
                class: ClassKey::Song,
                rows: vec![RowRef::new(TableId(1), 4)],
                labels: vec!["Octopus Garden".into(), "Octopus's Garden".into()],
                facts: vec![],
            },
        ];
        let results = vec![
            NewDetectionResult {
                entity: 0,
                outcome: NewDetectionOutcome::Existing(linked),
                best_score: 0.9,
                candidate_count: 3,
            },
            NewDetectionResult {
                entity: 1,
                outcome: NewDetectionOutcome::New,
                best_score: 0.1,
                candidate_count: 1,
            },
        ];
        let slice = Arc::new(ClassSnapshot::build(&kb, ClassKey::Song, &entities, &results));
        let mut classes = vec![None; CLASS_KEYS.len()];
        let slot = CLASS_KEYS.iter().position(|&c| c == ClassKey::Song).unwrap();
        classes[slot] = Some(slice);
        KbSnapshot::assemble(1, 2, 3, classes)
    }

    #[test]
    fn records_project_provenance_and_links() {
        let snap = sample_snapshot();
        let song = snap.class(ClassKey::Song).expect("song slice");
        assert_eq!(song.len(), 2);
        let rec = song.record(0).unwrap();
        assert_eq!(rec.tables, vec![TableId(1), TableId(3)]);
        assert_eq!(rec.fact("runtime"), Some(&Value::Quantity(159.0)));
        match &rec.outcome {
            LinkOutcome::Existing { label, .. } => assert_eq!(label, "Yellow Submarine"),
            other => panic!("expected a link, got {other:?}"),
        }
        assert!(song.record(1).unwrap().outcome.is_new());
        assert!(song.record(2).is_none());
        assert!(snap.class(ClassKey::Settlement).is_none());
    }

    #[test]
    fn lookups_hit_all_record_labels() {
        let snap = sample_snapshot();
        let exact = snap.exact_lookup(Some(ClassKey::Song), "yellow SUBMARINE");
        assert_eq!(exact.len(), 1);
        assert_eq!(exact[0].entity, EntityRef { class: ClassKey::Song, id: 0 });
        assert_eq!(exact[0].score, 1.0);
        // The alternative label retrieves the same record as the canonical.
        let alt = snap.exact_lookup(None, "octopus's garden");
        assert_eq!(alt.len(), 1);
        assert_eq!(alt[0].entity.id, 1);
        assert_eq!(alt[0].label, "Octopus Garden", "exact hits surface the canonical label");

        let fuzzy = snap.fuzzy_lookup(None, "yelow submarine", 5);
        assert_eq!(fuzzy[0].entity.id, 0, "typo should still rank the submarine first");
        assert!(fuzzy[0].score < 1.0);
        assert!(snap.fuzzy_lookup(None, "zzz qqq", 5).is_empty());
    }

    #[test]
    fn paging_clamps_to_the_class() {
        let snap = sample_snapshot();
        let page = snap.list_class(ClassKey::Song, 0, 10);
        assert_eq!(page.total, 2);
        assert_eq!(page.entities.len(), 2);
        let second = snap.list_class(ClassKey::Song, 1, 10);
        assert_eq!(second.entities, vec![EntityRef { class: ClassKey::Song, id: 1 }]);
        assert!(snap.list_class(ClassKey::Song, 9, 10).entities.is_empty());
        assert_eq!(snap.list_class(ClassKey::Settlement, 0, 10).total, 0);
    }

    #[test]
    fn stats_count_new_and_linked() {
        let snap = sample_snapshot();
        let stats = snap.stats();
        assert_eq!(stats.version, 1);
        assert_eq!((stats.tables, stats.rows), (2, 3));
        assert_eq!(stats.classes.len(), 1);
        let song = &stats.classes[0];
        assert_eq!((song.entities, song.new_entities, song.linked_entities), (2, 1, 1));
        assert_eq!(song.rows, 3);
    }

    #[test]
    fn batch_execution_matches_sequential() {
        let snap = sample_snapshot();
        let queries = vec![
            Query::Exact { class: None, label: "Yellow Submarine".into() },
            Query::Fuzzy { class: Some(ClassKey::Song), label: "octopus".into(), k: 3 },
            Query::Entity { entity: EntityRef { class: ClassKey::Song, id: 1 } },
            Query::Entity { entity: EntityRef { class: ClassKey::Song, id: 99 } },
            Query::List { class: ClassKey::Song, offset: 0, limit: 1 },
            Query::Stats,
        ];
        let sequential: Vec<QueryOutput> = queries.iter().map(|q| snap.execute(q)).collect();
        let batched = snap.execute_batch(&queries);
        assert_eq!(sequential, batched);
        assert!(matches!(&batched[2], QueryOutput::Entity(Some(r)) if r.outcome.is_new()));
        assert!(matches!(&batched[3], QueryOutput::Entity(None)));
    }
}
