//! Durable serving: a [`ServePipeline`] whose accumulated state survives
//! the process.
//!
//! [`DurableServePipeline`] pairs the serve layer with an
//! [`ltee_store::KbStore`] directory and upholds one protocol:
//!
//! 1. **WAL first.** Every non-empty micro-batch is encoded and fsynced to
//!    the write-ahead log *before* it is applied in memory. A batch the
//!    pipeline then rejects (duplicate table id) is rolled back off the
//!    log, so disk state never gets ahead of a state that will exist.
//! 2. **Checkpoints are cuts, not copies of the log.** A checkpoint
//!    captures the full accumulated state after batch *N*; the store then
//!    compacts the WAL down to what the retained fallback checkpoint
//!    cannot reconstruct.
//! 3. **Recovery = newest valid checkpoint + WAL tail replay.** The PR 3
//!    incremental-equivalence contract makes the replay deterministic, so
//!    the recovered process is *bit-identical* — snapshot fingerprints and
//!    all — to the process that never crashed
//!    (`tests/recovery_equivalence.rs` proves this at every crash point).
//!
//! The recovered snapshot sequence resumes at the recovered batch count:
//! versions published before the crash were never in the new process's
//! retention window (`snapshot_at` of older versions is a typed
//! [`crate::SnapshotAtError::VersionReclaimed`]), matching the snapshot
//! cell's "retention window of *this* cell" contract.

use std::path::Path;

use ltee_core::checkpoint::{decode_corpus, encode_corpus};
use ltee_core::{config_fingerprint, IngestReport, PipelineConfig, TrainedModels};
use ltee_kb::KnowledgeBase;
use ltee_store::{KbStore, StoreError, WalTail};
use ltee_webtables::Corpus;

use crate::{IncrementalPipeline, KbSnapshot, RetentionPolicy, ServePipeline, SnapshotReader};

use std::sync::Arc;

/// When [`DurableServePipeline::ingest`] should cut a checkpoint on its
/// own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointPolicy {
    /// Never automatically — the caller invokes
    /// [`DurableServePipeline::checkpoint`] explicitly.
    Manual,
    /// After every `n`-th applied batch (n ≥ 1).
    EveryBatches(u64),
}

/// What [`DurableServePipeline::open`] recovered from the store directory.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Applied-batch count of the checkpoint recovery started from, if one
    /// was usable.
    pub from_checkpoint: Option<u64>,
    /// WAL batches replayed on top of the checkpoint.
    pub replayed_batches: u64,
    /// How the WAL scan ended; [`WalTail::Truncated`] means a torn tail
    /// was dropped (and repaired on disk).
    pub wal_tail: WalTail,
}

impl RecoveryReport {
    /// Total batches the recovered process serves (checkpoint + replay) —
    /// equals the published snapshot version after recovery.
    pub fn recovered_batches(&self) -> u64 {
        self.from_checkpoint.unwrap_or(0) + self.replayed_batches
    }
}

/// A [`ServePipeline`] backed by a durable store directory: crash-safe
/// ingest (WAL-first), periodic checkpoints, and restart recovery that is
/// bit-identical to never having crashed. See the [module docs](self).
#[derive(Debug)]
pub struct DurableServePipeline<'a> {
    serve: ServePipeline<'a>,
    store: KbStore,
    policy: CheckpointPolicy,
}

impl<'a> DurableServePipeline<'a> {
    /// Open (or initialise) the store at `dir` and recover whatever state
    /// survived: newest structurally valid checkpoint, then replay of the
    /// WAL tail. A checkpoint or WAL minted under a different config
    /// fingerprint is a hard typed error; a torn WAL tail is dropped and
    /// repaired. On success the published snapshot version equals the
    /// number of batches recovered. Snapshot retention is the default
    /// [`RetentionPolicy`]; use
    /// [`DurableServePipeline::open_with_retention`] to pick the window.
    pub fn open(
        dir: impl AsRef<Path>,
        kb: &'a KnowledgeBase,
        models: TrainedModels,
        config: PipelineConfig,
        policy: CheckpointPolicy,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        Self::open_with_retention(dir, kb, models, config, policy, RetentionPolicy::default())
    }

    /// [`DurableServePipeline::open`] with an explicit snapshot
    /// [`RetentionPolicy`]. Retention is an in-memory serving knob, not a
    /// durability one: checkpoints and the WAL are unaffected, and
    /// recovery replays the identical state at any window.
    pub fn open_with_retention(
        dir: impl AsRef<Path>,
        kb: &'a KnowledgeBase,
        models: TrainedModels,
        config: PipelineConfig,
        policy: CheckpointPolicy,
        retention: RetentionPolicy,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        if let CheckpointPolicy::EveryBatches(n) = policy {
            assert!(n >= 1, "EveryBatches(0) would checkpoint nowhere");
        }
        let fingerprint = config_fingerprint(&config);
        let recovery = KbStore::open(dir, fingerprint)?;

        let (pipeline, from_checkpoint) = match &recovery.checkpoint {
            Some(ckpt) => {
                let restored = ckpt.restore(kb, models, config)?;
                (restored, Some(ckpt.applied_batches))
            }
            None => (IncrementalPipeline::new(kb, models, config), None),
        };
        let mut serve =
            ServePipeline::from_pipeline(kb, pipeline, from_checkpoint.unwrap_or(0), retention);

        let mut replayed = 0u64;
        for record in &recovery.tail {
            let batch = decode_corpus(&record.payload)?;
            serve.ingest(&batch)?;
            replayed += 1;
        }
        debug_assert_eq!(serve.version(), recovery.store.next_seq() - 1);

        let report = RecoveryReport {
            from_checkpoint,
            replayed_batches: replayed,
            wal_tail: recovery.wal_tail,
        };
        Ok((Self { serve, store: recovery.store, policy }, report))
    }

    /// Ingest one micro-batch durably: fsync it to the WAL, apply it, then
    /// cut a checkpoint if the policy says so. Empty batches are no-ops and
    /// touch neither the log nor the version; rejected batches are rolled
    /// back off the log and leave no trace.
    pub fn ingest(&mut self, batch: &Corpus) -> Result<IngestReport, StoreError> {
        if batch.is_empty() {
            return Ok(self.serve.ingest(batch)?);
        }
        let wal_size = self.store.wal_size()?;
        self.store.append_batch(&encode_corpus(batch))?;
        let report = match self.serve.ingest(batch) {
            Ok(report) => report,
            Err(rejected) => {
                self.store.rollback_append(wal_size)?;
                return Err(rejected.into());
            }
        };
        if let CheckpointPolicy::EveryBatches(n) = self.policy {
            if self.serve.version().is_multiple_of(n) {
                self.checkpoint()?;
            }
        }
        Ok(report)
    }

    /// Cut a checkpoint of the current state now (retention and WAL
    /// compaction included — see [`KbStore::write_checkpoint`]).
    pub fn checkpoint(&mut self) -> Result<(), StoreError> {
        let checkpoint = self.serve.pipeline.checkpoint(self.serve.version());
        self.store.write_checkpoint(&checkpoint)?;
        Ok(())
    }

    /// A wait-free reader handle (see [`ServePipeline::reader`]).
    pub fn reader(&self) -> SnapshotReader {
        self.serve.reader()
    }

    /// The current snapshot (see [`ServePipeline::snapshot`]).
    pub fn snapshot(&self) -> Arc<KbSnapshot> {
        self.serve.snapshot()
    }

    /// The latest published version — equals the number of non-empty
    /// batches this KB has absorbed across all processes that wrote to the
    /// store.
    pub fn version(&self) -> u64 {
        self.serve.version()
    }

    /// The wrapped serve pipeline.
    pub fn serve(&self) -> &ServePipeline<'a> {
        &self.serve
    }

    /// The backing store (for diagnostics: paths, next batch number).
    pub fn store(&self) -> &KbStore {
        &self.store
    }
}
