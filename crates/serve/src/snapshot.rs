//! Immutable, versioned knowledge-base snapshots.
//!
//! A [`KbSnapshot`] is the unit of consistency of the serving layer: one
//! self-contained, read-only projection of everything the incremental
//! pipeline has produced up to (and including) one micro-batch. Snapshots
//! borrow nothing — entities, provenance, labels and indexes are owned —
//! so a reader holding an `Arc<KbSnapshot>` keeps querying the exact same
//! KB version no matter how many batches ingest after it.
//!
//! Per class the snapshot holds an [`Arc<ClassSnapshot>`]; versions that
//! did not touch a class share the previous version's `ClassSnapshot`
//! physically, so publishing a batch costs memory proportional to the
//! classes it touched, not to the whole KB.

use std::sync::Arc;

use ltee_fusion::Entity;
use ltee_index::{LabelIndex, SharedLabelIndex};
use ltee_kb::{ClassKey, InstanceId, KnowledgeBase, CLASS_KEYS};
use ltee_newdetect::{NewDetectionOutcome, NewDetectionResult};
use ltee_types::Value;
use ltee_webtables::{RowRef, TableId};

use crate::query::{EntityHit, EntityRef};

/// How a served entity relates to the knowledge base it extends.
#[derive(Debug, Clone, PartialEq)]
pub enum LinkOutcome {
    /// The entity is missing from the knowledge base — a long-tail find.
    New,
    /// The entity was matched to an existing knowledge base instance.
    Existing {
        /// The matched instance.
        instance: InstanceId,
        /// The instance's canonical label, projected at snapshot build time
        /// so the record needs no KB access to display the link.
        label: String,
    },
}

impl LinkOutcome {
    /// Whether the entity was classified as new.
    pub fn is_new(&self) -> bool {
        matches!(self, LinkOutcome::New)
    }
}

/// One served entity: the self-contained projection of a fused entity plus
/// its new-detection verdict and full table provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct EntityRecord {
    /// The entity's class.
    pub class: ClassKey,
    /// Labels extracted from the entity's rows, most frequent first.
    pub labels: Vec<String>,
    /// Fused facts: property → (value, support score).
    pub facts: Vec<(String, Value, f64)>,
    /// The web table rows the entity was fused from (row-level provenance).
    pub rows: Vec<RowRef>,
    /// The distinct tables behind those rows, ascending (table provenance).
    pub tables: Vec<TableId>,
    /// New-or-existing verdict, with the linked instance projected in.
    pub outcome: LinkOutcome,
    /// The best KB candidate's aggregated score (0.0 without candidates).
    pub best_score: f64,
    /// Number of KB candidates new detection considered.
    pub candidate_count: usize,
}

impl EntityRecord {
    /// The canonical (most frequent) label.
    pub fn canonical_label(&self) -> &str {
        self.labels.first().map(String::as_str).unwrap_or("")
    }

    /// The fused value of a property, if present.
    pub fn fact(&self, property: &str) -> Option<&Value> {
        self.facts.iter().find(|(p, _, _)| p == property).map(|(_, v, _)| v)
    }
}

/// The per-class slice of a snapshot: entity records plus a frozen label
/// index over every record label (record position = index id).
#[derive(Debug)]
pub struct ClassSnapshot {
    class: ClassKey,
    records: Vec<EntityRecord>,
    index: SharedLabelIndex,
    /// Aggregates, computed once at build time — the slice is immutable,
    /// so stats queries must not re-scan the records per call.
    stats: ClassStats,
}

impl ClassSnapshot {
    /// Project one class's accumulated pipeline output into a
    /// self-contained snapshot slice.
    pub(crate) fn build(
        kb: &KnowledgeBase,
        class: ClassKey,
        entities: &[Entity],
        results: &[NewDetectionResult],
    ) -> Self {
        debug_assert_eq!(entities.len(), results.len());
        let mut index = LabelIndex::new();
        let mut records = Vec::with_capacity(entities.len());
        for (pos, (entity, result)) in entities.iter().zip(results).enumerate() {
            for label in &entity.labels {
                index.insert(pos as u64, label);
            }
            let outcome = match result.outcome {
                NewDetectionOutcome::New => LinkOutcome::New,
                NewDetectionOutcome::Existing(instance) => LinkOutcome::Existing {
                    instance,
                    label: kb.instance_label(instance).unwrap_or_default().to_string(),
                },
            };
            records.push(EntityRecord {
                class,
                labels: entity.labels.clone(),
                facts: entity.facts.clone(),
                rows: entity.rows.clone(),
                tables: entity.provenance_tables(),
                outcome,
                best_score: result.best_score,
                candidate_count: result.candidate_count,
            });
        }
        let stats = ClassStats {
            class,
            entities: records.len(),
            new_entities: records.iter().filter(|r| r.outcome.is_new()).count(),
            linked_entities: records.iter().filter(|r| !r.outcome.is_new()).count(),
            rows: records.iter().map(|r| r.rows.len()).sum(),
        };
        Self { class, records, index: index.into_shared(), stats }
    }

    /// Aggregate figures of the slice (precomputed at build time).
    pub fn stats(&self) -> &ClassStats {
        &self.stats
    }

    /// The class this slice serves.
    pub fn class(&self) -> ClassKey {
        self.class
    }

    /// All entity records, in cluster order (stable across versions that
    /// extend rather than rebuild a cluster).
    pub fn records(&self) -> &[EntityRecord] {
        &self.records
    }

    /// One record by position.
    pub fn record(&self, id: u32) -> Option<&EntityRecord> {
        self.records.get(id as usize)
    }

    /// The frozen label index over this class's entity labels.
    pub fn index(&self) -> &SharedLabelIndex {
        &self.index
    }

    /// Number of entities served for the class.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the class has no entities yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Aggregate figures of one class inside a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassStats {
    /// The class.
    pub class: ClassKey,
    /// Entities served.
    pub entities: usize,
    /// Entities classified as new (KB extensions).
    pub new_entities: usize,
    /// Entities linked to existing KB instances.
    pub linked_entities: usize,
    /// Web table rows backing the class's entities.
    pub rows: usize,
}

/// Aggregate figures of a whole snapshot — cheap to compute, and precise
/// enough that two snapshots of the same version always agree on them
/// (the isolation stress test leans on this).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotStats {
    /// The snapshot version.
    pub version: u64,
    /// Tables ingested up to this version.
    pub tables: usize,
    /// Raw rows ingested up to this version.
    pub rows: usize,
    /// Per-class figures, only classes with at least one entity.
    pub classes: Vec<ClassStats>,
}

/// One immutable version of the served knowledge base.
///
/// See the [module docs](self) for the consistency model. Obtained from a
/// [`crate::SnapshotReader`] (always the latest published version) and
/// queried through the methods here or through
/// [`KbSnapshot::execute`] / [`KbSnapshot::execute_batch`].
#[derive(Debug)]
pub struct KbSnapshot {
    version: u64,
    tables: usize,
    rows: usize,
    /// One slot per [`CLASS_KEYS`] entry; `None` until the class first
    /// produces an entity.
    classes: Vec<Option<Arc<ClassSnapshot>>>,
}

impl KbSnapshot {
    /// The version-0 snapshot: nothing ingested yet.
    pub(crate) fn empty() -> Self {
        Self { version: 0, tables: 0, rows: 0, classes: vec![None; CLASS_KEYS.len()] }
    }

    /// Assemble a snapshot from the per-class cache of a publisher.
    pub(crate) fn assemble(
        version: u64,
        tables: usize,
        rows: usize,
        classes: Vec<Option<Arc<ClassSnapshot>>>,
    ) -> Self {
        debug_assert_eq!(classes.len(), CLASS_KEYS.len());
        Self { version, tables, rows, classes }
    }

    /// The snapshot's version: 0 for the empty initial snapshot, then
    /// incremented by exactly 1 per published ingest (strictly monotonic).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Build a synthetic snapshot whose heap footprint is a constant
    /// `payload_slots × 8` bytes regardless of version — the reclamation
    /// soak publishes thousands of these through a raw cell so a
    /// counting allocator can prove resident bytes plateau at the
    /// retention window instead of growing with version count. (A real
    /// pipeline's snapshots share untouched class slices across versions
    /// *and* legitimately grow with corpus size, which would drown the
    /// signal.) Test support, not API: hidden, and useless for serving.
    #[doc(hidden)]
    pub fn synthetic_for_soak(version: u64, payload_slots: usize) -> Self {
        Self {
            version,
            tables: version as usize + 7,
            rows: 3 * version as usize,
            classes: vec![None; payload_slots.max(CLASS_KEYS.len())],
        }
    }

    /// Tables ingested up to this version.
    pub fn tables(&self) -> usize {
        self.tables
    }

    /// Raw rows ingested up to this version.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// A content fingerprint of everything this snapshot serves: version,
    /// corpus counters, and every record of every class slice — labels,
    /// facts, provenance, link outcome, with `f64`s hashed by exact bit
    /// pattern. Two snapshots answer every query identically iff their
    /// fingerprints match, which is what the recovery-equivalence suite
    /// asserts between a recovered process and the never-crashed run.
    pub fn fingerprint(&self) -> u64 {
        use std::fmt::Write as _;
        let mut canon = String::new();
        let _ = write!(canon, "v{};t{};r{}", self.version, self.tables, self.rows);
        for (slot, class) in self.classes.iter().enumerate() {
            let Some(class) = class else {
                let _ = write!(canon, "|c{slot}:-");
                continue;
            };
            let _ = write!(canon, "|c{slot}:{}", class.records().len());
            for record in class.records() {
                let _ = write!(canon, "[{:?}", record.labels);
                for (property, value, score) in &record.facts {
                    let _ = write!(canon, ";{property}={value:?}@{:016x}", score.to_bits());
                }
                let _ = write!(canon, ";rows{:?};tables{:?}", record.rows, record.tables);
                match &record.outcome {
                    LinkOutcome::New => canon.push_str(";new"),
                    LinkOutcome::Existing { instance, label } => {
                        let _ = write!(canon, ";={}:{label}", instance.raw());
                    }
                }
                let _ = write!(
                    canon,
                    ";s{:016x};k{}]",
                    record.best_score.to_bits(),
                    record.candidate_count
                );
            }
        }
        ltee_ml::codec::fnv1a64(canon.as_bytes())
    }

    /// The slice serving one class, if it has entities.
    pub fn class(&self, class: ClassKey) -> Option<&ClassSnapshot> {
        let slot = CLASS_KEYS.iter().position(|&c| c == class)?;
        self.classes[slot].as_deref()
    }

    /// All non-empty class slices, in [`CLASS_KEYS`] order.
    pub fn classes(&self) -> impl Iterator<Item = &ClassSnapshot> {
        self.classes.iter().filter_map(|c| c.as_deref())
    }

    /// Fetch one entity record.
    pub fn entity(&self, entity: EntityRef) -> Option<&EntityRecord> {
        self.class(entity.class)?.record(entity.id)
    }

    /// Entities whose normalised label equals the normalised query, in one
    /// class or (with `None`) across all classes. Exact hits score 1.0.
    pub fn exact_lookup(&self, class: Option<ClassKey>, label: &str) -> Vec<EntityHit> {
        let mut hits = Vec::new();
        for slice in self.class_slices(class) {
            for id in slice.index().exact_ids(label) {
                let id = id as u32;
                let record = slice.record(id).expect("index ids are record positions");
                hits.push(EntityHit {
                    entity: EntityRef { class: slice.class(), id },
                    score: 1.0,
                    label: record.canonical_label().to_string(),
                });
            }
        }
        hits
    }

    /// Fuzzy top-k label lookup, in one class or (with `None`) across all
    /// classes. Within a class the ranking is exactly
    /// [`SharedLabelIndex::lookup`]'s; across classes the query fans out
    /// over every class index concurrently (each keeping its own DAAT
    /// top-k bounds) and the per-class top-k lists are merged by
    /// descending score (ties: ascending record id, then [`CLASS_KEYS`]
    /// order) and cut to `k`.
    pub fn fuzzy_lookup(&self, class: Option<ClassKey>, label: &str, k: usize) -> Vec<EntityHit> {
        use rayon::prelude::*;
        let slices = self.class_slices(class);
        // Fan out across the per-class (per-shard) indexes. Collection is
        // ordered, so the concatenated list below is independent of how
        // many workers ran the lookups.
        let per_slice: Vec<Vec<EntityHit>> = slices
            .par_iter()
            .map(|slice| {
                slice
                    .index()
                    .lookup(label, k)
                    .into_iter()
                    .map(|m| EntityHit {
                        entity: EntityRef { class: slice.class(), id: m.id as u32 },
                        score: m.score,
                        label: slice.index().resolve(m.normalized).to_string(),
                    })
                    .collect()
            })
            .collect();
        let mut hits: Vec<EntityHit> = per_slice.into_iter().flatten().collect();
        // Per-class lists arrive sorted; the cross-class merge re-sorts by
        // the documented total order. `sort_by` is stable, so equal keys
        // keep CLASS_KEYS order.
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.entity.id.cmp(&b.entity.id))
        });
        hits.truncate(k);
        hits
    }

    /// One page of a class's entities, in cluster order.
    pub fn list_class(&self, class: ClassKey, offset: usize, limit: usize) -> ClassPage {
        let Some(slice) = self.class(class) else {
            return ClassPage { class, total: 0, offset, entities: Vec::new() };
        };
        let total = slice.len();
        let start = offset.min(total);
        let end = start.saturating_add(limit).min(total);
        let entities = (start..end)
            .map(|id| EntityRef { class, id: id as u32 })
            .collect();
        ClassPage { class, total, offset, entities }
    }

    /// Aggregate figures of the snapshot. O(classes): the per-class
    /// aggregates were computed once when each slice was built.
    pub fn stats(&self) -> SnapshotStats {
        let classes = self.classes().map(|slice| slice.stats().clone()).collect();
        SnapshotStats { version: self.version, tables: self.tables, rows: self.rows, classes }
    }

    fn class_slices(&self, class: Option<ClassKey>) -> Vec<&ClassSnapshot> {
        match class {
            Some(class) => self.class(class).into_iter().collect(),
            None => self.classes().collect(),
        }
    }
}

/// One page of [`KbSnapshot::list_class`] results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassPage {
    /// The listed class.
    pub class: ClassKey,
    /// Total entities of the class in this snapshot.
    pub total: usize,
    /// The requested offset (clamped only in `entities`, echoed verbatim).
    pub offset: usize,
    /// The page's entity references, in cluster order.
    pub entities: Vec<EntityRef>,
}
