//! The published-snapshot cell: wait-free reads, epoch-reclaimed history.
//!
//! [`SnapshotCell`] is a hand-rolled `Arc` swap. The constraint it is
//! built for: **readers must be wait-free** — a query must never block on
//! (or even contend a lock with) an ingest publishing the next version.
//! `RwLock<Arc<KbSnapshot>>` fails that bar (a writer stalls every
//! reader); this cell's [`SnapshotCell::load`] is a handful of
//! uncontended atomic operations, unconditionally: pin the epoch, load
//! the pointer, bump the refcount, unpin.
//!
//! ## The hazard, and the epoch scheme that closes it
//!
//! The classic hazard of a raw `AtomicPtr<T>` swap is the load/increment
//! race: a reader loads the pointer, the writer swaps the value out and
//! frees it, the reader increments a freed refcount. Earlier revisions of
//! this cell sidestepped the hazard by never freeing anything — every
//! superseded version stayed resident for the cell's lifetime, so
//! sustained ingest of a hot class accumulated O(versions × class size).
//! This revision reclaims superseded versions with an epoch protocol:
//!
//! * The cell keeps a monotonically increasing **global epoch**
//!   (starting at 1), advanced by the writer once per publish, *after*
//!   the pointer swap.
//! * Every reader owns a registered **epoch slot** ([`ReaderSlot`]). A
//!   load **pins** the slot — stores the current global epoch into it —
//!   *before* loading the pointer, and unpins (stores the idle value 0)
//!   after the refcount increment.
//! * When a version falls out of the [`RetentionPolicy`] window it is not
//!   freed immediately: it moves to a **limbo** list tagged with the
//!   epoch at which it was retired. A limbo entry is freed only once
//!   every slot is idle or pinned at a *strictly greater* epoch.
//!
//! **Why that is safe.** All four protocol operations — the reader's slot
//! store `S` and pointer load `L`, the writer's swap `W` and slot scan
//! `R` — are `SeqCst`, so they sit in one total order. Suppose the writer
//! frees a version `V` that a reader is about to resurrect. For the
//! writer to free `V`, its scan `R` (which runs after `W`, the swap that
//! unlinked `V`) must have observed the reader's slot as idle or pinned
//! past `V`'s retire epoch. Two cases:
//!
//! * `R` did not see the pin `S` at all. Then `R` precedes `S` in the
//!   total order, so `W < R < S < L` — and a `SeqCst` load ordered after
//!   the swap cannot return the swapped-out pointer. The reader loads the
//!   *new* current version, not `V`. (This also covers a reader that
//!   stalls between reading the epoch and storing the pin: the stored pin
//!   may be arbitrarily stale, but then the pointer load is even later
//!   and sees an even newer current.)
//! * `R` saw a pin with epoch `e` greater than `V`'s retire epoch. A pin
//!   of epoch `e` means the reader read the global epoch *after* the
//!   writer advanced it past `V`'s retirement — and that advance happens
//!   after the swap that unlinked `V`, so again the reader's subsequent
//!   pointer load cannot return `V`.
//!
//! Conversely, a reader that *did* load `V` pinned an epoch no greater
//! than `V`'s retire epoch (the pin is stored before the load, and the
//! epoch only advances after `V` is swapped out), so the scan keeps `V`
//! in limbo until the reader unpins. Pins last for the handful of
//! instructions inside `load`, so limbo is transient: a quiescent cell
//! retains exactly the retention window.
//!
//! ## Retention window
//!
//! Reclamation is subject to an explicit [`RetentionPolicy`]: keep-last-N
//! versions (or everything, for bounded runs that want full replay).
//! [`SnapshotCell::snapshot_at`] serves any version inside the window;
//! outside it the answer is a typed [`SnapshotAtError::VersionReclaimed`]
//! — never a panic, and never a "maybe, if no reader raced you" from
//! limbo, which would make replay timing-dependent. A version a reader
//! already holds an `Arc` to stays alive for that reader regardless — the
//! cell only drops *its own* reference.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::snapshot::KbSnapshot;

/// How many superseded versions a [`SnapshotCell`] keeps replayable.
///
/// The window is counted in *versions resident*, current included: with
/// `KeepLast(n)`, `snapshot_at` serves the latest `n` versions and
/// anything older is reclaimed once no reader can still be mid-load on
/// it. The policy is fixed at cell construction — a knob on
/// [`crate::ServePipeline::with_retention`] and
/// [`crate::DurableServePipeline::open_with_retention`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetentionPolicy {
    /// Retain every published version for the cell's lifetime (the
    /// pre-reclamation behaviour). Memory grows with version count; only
    /// sensible for bounded runs that want unlimited `snapshot_at`
    /// replay, such as the isolation stress tests.
    KeepAll,
    /// Retain the latest `n` versions (clamped to at least 1 — the
    /// current version is always resident).
    KeepLast(usize),
}

impl RetentionPolicy {
    /// The default replay window of [`RetentionPolicy::default`].
    pub const DEFAULT_KEEP_LAST: usize = 8;

    /// Versions this policy keeps resident (`usize::MAX` for `KeepAll`).
    pub fn window(self) -> usize {
        match self {
            RetentionPolicy::KeepAll => usize::MAX,
            RetentionPolicy::KeepLast(n) => n.max(1),
        }
    }
}

impl Default for RetentionPolicy {
    /// Keep the last [`RetentionPolicy::DEFAULT_KEEP_LAST`] versions.
    fn default() -> Self {
        RetentionPolicy::KeepLast(Self::DEFAULT_KEEP_LAST)
    }
}

/// Why [`SnapshotCell::snapshot_at`] could not serve a version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotAtError {
    /// The version is older than the retention window: it was published
    /// (by this process or, after a durable restart, a predecessor) and
    /// has been reclaimed.
    VersionReclaimed {
        /// The requested version.
        version: u64,
        /// The oldest version still replayable.
        oldest_retained: u64,
    },
    /// The version is newer than anything published so far.
    NotYetPublished {
        /// The requested version.
        version: u64,
        /// The latest published version.
        latest: u64,
    },
}

impl std::fmt::Display for SnapshotAtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotAtError::VersionReclaimed { version, oldest_retained } => write!(
                f,
                "snapshot version {version} has been reclaimed (oldest retained: \
                 {oldest_retained})"
            ),
            SnapshotAtError::NotYetPublished { version, latest } => {
                write!(f, "snapshot version {version} not yet published (latest: {latest})")
            }
        }
    }
}

impl std::error::Error for SnapshotAtError {}

/// The idle value of an epoch slot. Real epochs start at 1.
const SLOT_IDLE: u64 = 0;

/// Shared state of one epoch slot: the registry holds one `Arc`, the
/// owning [`ReaderSlot`] the other. `pinned` is the only field the read
/// path touches.
#[derive(Debug)]
struct SlotState {
    /// [`SLOT_IDLE`] when no load is in flight; otherwise the global
    /// epoch the in-flight load pinned.
    pinned: AtomicU64,
}

/// A registered epoch slot — the reader-side half of the reclamation
/// protocol, required by [`SnapshotCell::load`].
///
/// One slot serialises one load at a time, so it must not be shared
/// across threads (`!Sync`, enforced at the type level); it is `Send` and
/// cheap, so create one per reader thread via
/// [`SnapshotCell::register_slot`] (or just clone a
/// [`crate::SnapshotReader`], which carries its own). Dropping the slot
/// deregisters it: the writer prunes orphaned slots on the next publish,
/// so reader churn does not accumulate registry entries.
#[derive(Debug)]
pub struct ReaderSlot {
    state: Arc<SlotState>,
    /// Identity of the cell the slot is registered with; `load` rejects
    /// a slot minted by a different cell (its pins would be invisible to
    /// this cell's reclamation scan — an unsoundness, not a misuse).
    cell_id: u64,
    /// One slot, one concurrent load: `Cell` makes the type `!Sync`.
    _single_thread: PhantomData<std::cell::Cell<()>>,
}

/// Writer-side bookkeeping, behind a mutex readers never touch.
#[derive(Debug)]
struct Retained {
    /// Versions inside the retention window, oldest first. Invariants:
    /// never empty, versions contiguous ascending, and — except for the
    /// instants inside `publish` itself, which is single-writer — the
    /// last entry is the current version.
    window: VecDeque<Arc<KbSnapshot>>,
    /// Versions evicted from the window but possibly still observable by
    /// a reader mid-load: `(retire_epoch, version)`. Freed by `reclaim`
    /// once every slot is idle or pinned past `retire_epoch`.
    limbo: Vec<(u64, Arc<KbSnapshot>)>,
    /// Every registered slot, scanned by `reclaim`, pruned when only the
    /// registry still holds the `Arc` (the `ReaderSlot` was dropped).
    slots: Vec<Arc<SlotState>>,
    /// Versions freed so far (diagnostics; monotone).
    reclaimed: u64,
}

/// Source of unique cell identities (see [`ReaderSlot::cell_id`]).
static NEXT_CELL_ID: AtomicU64 = AtomicU64::new(1);

/// Lock-free publication point for [`KbSnapshot`] versions, with
/// epoch-based reclamation of superseded versions.
///
/// One writer publishes (the serve pipeline, serialised by `&mut self` on
/// ingest); any number of readers [`load`](SnapshotCell::load)
/// concurrently and wait-free through registered [`ReaderSlot`]s. See the
/// [module docs](self) for the protocol and its safety argument.
#[derive(Debug)]
pub struct SnapshotCell {
    /// Points at the data of the current version's `Arc`. The pointed-to
    /// snapshot always carries one outstanding `into_raw` count owned by
    /// this field, *and* a strong count owned by `retained.window` — so
    /// it stays backed through the swap that supersedes it.
    current: AtomicPtr<KbSnapshot>,
    /// The global epoch: starts at 1, advanced once per publish, after
    /// the swap. A pinned slot holding epoch `e` proves its reader can
    /// only materialise versions retired at epoch ≥ `e`.
    epoch: AtomicU64,
    /// The latest published version number, for lock-free `version()`.
    latest: AtomicU64,
    /// Retention window, limbo, slot registry (writer side + diagnostics;
    /// the read path never touches it).
    retained: Mutex<Retained>,
    policy: RetentionPolicy,
    /// This cell's identity, stamped into every slot it registers.
    id: u64,
}

impl SnapshotCell {
    /// Create a cell publishing `initial` as the current version, with
    /// superseded versions retained per `policy`. Crate-internal: cells
    /// are only created (and written) by [`crate::ServePipeline`], which
    /// is what enforces the single-writer requirement at the type level.
    pub(crate) fn new(initial: Arc<KbSnapshot>, policy: RetentionPolicy) -> Self {
        let mut window = VecDeque::new();
        window.push_back(Arc::clone(&initial));
        Self {
            latest: AtomicU64::new(initial.version()),
            current: AtomicPtr::new(Arc::into_raw(initial).cast_mut()),
            epoch: AtomicU64::new(SLOT_IDLE + 1),
            retained: Mutex::new(Retained {
                window,
                limbo: Vec::new(),
                slots: Vec::new(),
                reclaimed: 0,
            }),
            policy,
            id: NEXT_CELL_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Construct a raw cell outside the crate. Test support for the
    /// reclamation soak (which publishes synthetic constant-size
    /// snapshots without a pipeline), not API: production cells are
    /// created and written only by [`crate::ServePipeline`], which is
    /// what enforces the single-writer requirement.
    #[doc(hidden)]
    pub fn new_for_tests(initial: Arc<KbSnapshot>, policy: RetentionPolicy) -> Self {
        Self::new(initial, policy)
    }

    /// Publish through a raw cell outside the crate. Test support (see
    /// [`SnapshotCell::new_for_tests`]); the caller must serialise
    /// publishes exactly as `ServePipeline::ingest`'s `&mut self` would.
    #[doc(hidden)]
    pub fn publish_for_tests(&self, snapshot: Arc<KbSnapshot>) {
        self.publish(snapshot);
    }

    /// Drain reclaimable limbo outside the crate. Test support (see
    /// [`SnapshotCell::new_for_tests`]).
    #[doc(hidden)]
    pub fn reclaim_for_tests(&self) {
        self.reclaim();
    }

    /// Register an epoch slot for a reader thread. Takes the registry
    /// lock — reader *creation* is not wait-free, only [`load`] is; do it
    /// once per thread, not per query.
    ///
    /// [`load`]: SnapshotCell::load
    pub fn register_slot(&self) -> ReaderSlot {
        let state = Arc::new(SlotState { pinned: AtomicU64::new(SLOT_IDLE) });
        self.retained.lock().expect("snapshot retention lock").slots.push(Arc::clone(&state));
        ReaderSlot { state, cell_id: self.id, _single_thread: PhantomData }
    }

    /// The current snapshot. **Wait-free**: two atomic loads, two atomic
    /// stores and one refcount increment, no locks, no CAS loops, no
    /// spinning — regardless of concurrent publishes and reclamation. The
    /// returned `Arc` pins that version for as long as the caller holds
    /// it.
    ///
    /// # Panics
    ///
    /// If `slot` was registered with a different cell (using it here
    /// would hide its pin from this cell's reclamation scan).
    pub fn load(&self, slot: &ReaderSlot) -> Arc<KbSnapshot> {
        assert_eq!(slot.cell_id, self.id, "ReaderSlot used with a cell it was not registered with");
        // Pin: announce the epoch before touching the pointer. SeqCst on
        // the pin, the pointer load, the writer's swap and the writer's
        // slot scan puts all four in one total order — the module docs
        // carry the two-case proof that the writer can then never free a
        // version this load can still return.
        slot.state.pinned.store(self.epoch.load(Ordering::SeqCst), Ordering::SeqCst);
        let ptr = self.current.load(Ordering::SeqCst);
        // SAFETY: `ptr` was produced by `Arc::into_raw` (in `new` or
        // `publish`) and its snapshot is still alive: it is either the
        // current version (owned by this field plus the retention window)
        // or was retired at an epoch ≥ our pin — and `reclaim` never
        // frees a version retired at an epoch ≥ any pinned slot's value.
        let snapshot = unsafe {
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        };
        // Unpin. Release suffices: reclamation may free retired versions
        // from here on, but we hold an owning strong count.
        slot.state.pinned.store(SLOT_IDLE, Ordering::Release);
        snapshot
    }

    /// The current snapshot, without an epoch slot. Writer-side only:
    /// sound *only* while no `publish`/`reclaim` can run concurrently,
    /// which [`crate::ServePipeline`] guarantees by requiring `&mut self`
    /// for both. Takes the retention lock (never contended on the read
    /// path) — the writer's own loads are setup/diagnostics, not the hot
    /// path.
    pub(crate) fn load_writer(&self) -> Arc<KbSnapshot> {
        let retained = self.retained.lock().expect("snapshot retention lock");
        Arc::clone(retained.window.back().expect("retention window is never empty"))
    }

    /// Publish a new version, retire the current one into the retention
    /// window, and reclaim whatever fell out of it (epoch-safely).
    ///
    /// Writer-side and crate-internal: publishes must be serialised, and
    /// keeping this `pub(crate)` makes the only writer
    /// [`crate::ServePipeline::ingest`] (`&mut self`), so the
    /// monotonicity contract cannot be broken by a second publisher
    /// racing the swap. Readers are unaffected either way: a reader that
    /// loaded the old pointer just before the swap pinned an epoch that
    /// keeps the old version out of reclamation until it unpins.
    ///
    /// The retention lock is **not** held across the swap: the writer
    /// critical section observed by [`versions_retained`] diagnostics is
    /// pure bookkeeping (a push, at most a few pops, the slot scan), and
    /// freed snapshots are dropped after the lock is released, so a large
    /// reclaimed version never extends it either. The old version stays
    /// reachable throughout — it entered the window when *it* was
    /// published — so there is no swapped-but-untracked gap for
    /// `snapshot_at` to observe.
    ///
    /// [`versions_retained`]: SnapshotCell::versions_retained
    pub(crate) fn publish(&self, snapshot: Arc<KbSnapshot>) {
        let version = snapshot.version();
        let new_raw = Arc::into_raw(Arc::clone(&snapshot)).cast_mut();
        let old_raw = self.current.swap(new_raw, Ordering::SeqCst);
        // SAFETY: `old_raw` carries the `into_raw` count minted when it
        // was published; the window still owns it, so this balance only
        // releases the pointer's share.
        unsafe { drop(Arc::from_raw(old_raw)) };
        // Advance the epoch *after* the swap: any version evicted below
        // was swapped out at an epoch ≤ `retire_epoch`, so a reader that
        // could still materialise it is pinned at ≤ `retire_epoch`.
        let retire_epoch = self.epoch.fetch_add(1, Ordering::SeqCst);
        self.latest.store(version, Ordering::Release);

        {
            let mut retained = self.retained.lock().expect("snapshot retention lock");
            retained.window.push_back(snapshot);
            let keep = self.policy.window();
            while retained.window.len() > keep {
                let evicted = retained.window.pop_front().expect("len > keep ≥ 1");
                retained.limbo.push((retire_epoch, evicted));
            }
        }
        self.reclaim();
    }

    /// Free every limbo version no reader can still be mid-load on, and
    /// prune slots whose [`ReaderSlot`] was dropped. Runs on every
    /// publish; also callable explicitly (via
    /// [`crate::ServePipeline::reclaim`]) to drain limbo without
    /// publishing. The freed snapshots are dropped outside the lock.
    pub(crate) fn reclaim(&self) {
        let mut freed: Vec<Arc<KbSnapshot>> = Vec::new();
        {
            let mut retained = self.retained.lock().expect("snapshot retention lock");
            retained.slots.retain(|slot| Arc::strong_count(slot) > 1);
            // SeqCst slot loads: the scan must order against reader pins
            // and pointer loads (see the module docs' proof).
            let min_pin = retained
                .slots
                .iter()
                .map(|slot| slot.pinned.load(Ordering::SeqCst))
                .filter(|&pin| pin != SLOT_IDLE)
                .min()
                .unwrap_or(u64::MAX);
            let mut kept = Vec::with_capacity(retained.limbo.len());
            for (retire_epoch, snapshot) in retained.limbo.drain(..) {
                if retire_epoch < min_pin {
                    freed.push(snapshot);
                } else {
                    kept.push((retire_epoch, snapshot));
                }
            }
            retained.reclaimed += freed.len() as u64;
            retained.limbo = kept;
        }
        // Dropping (potentially large) snapshots happens off-lock so the
        // writer critical section stays O(bookkeeping).
        drop(freed);
    }

    /// The current version number. Lock-free (one atomic load).
    pub fn version(&self) -> u64 {
        self.latest.load(Ordering::Acquire)
    }

    /// A specific published version, if it is still inside the retention
    /// window. Versions older than the window yield
    /// [`SnapshotAtError::VersionReclaimed`] — deterministically, even if
    /// the bytes happen to linger in limbo: replayability is a property
    /// of the policy, not of reader timing. Takes the retention lock —
    /// meant for diagnostics and verification, not the hot query path.
    pub fn snapshot_at(&self, version: u64) -> Result<Arc<KbSnapshot>, SnapshotAtError> {
        let retained = self.retained.lock().expect("snapshot retention lock");
        let oldest = retained.window.front().expect("retention window is never empty").version();
        let newest = retained.window.back().expect("retention window is never empty").version();
        if version > newest {
            return Err(SnapshotAtError::NotYetPublished { version, latest: newest });
        }
        if version < oldest {
            return Err(SnapshotAtError::VersionReclaimed { version, oldest_retained: oldest });
        }
        // Window versions are contiguous ascending: direct index.
        Ok(Arc::clone(&retained.window[(version - oldest) as usize]))
    }

    /// The oldest version still replayable via [`snapshot_at`].
    ///
    /// [`snapshot_at`]: SnapshotCell::snapshot_at
    pub fn oldest_retained(&self) -> u64 {
        let retained = self.retained.lock().expect("snapshot retention lock");
        retained.window.front().expect("retention window is never empty").version()
    }

    /// Versions currently resident: the retention window plus any limbo
    /// versions awaiting a safe free. Quiescent cells (no load in flight)
    /// report exactly `min(published, window)`.
    pub fn versions_retained(&self) -> usize {
        let retained = self.retained.lock().expect("snapshot retention lock");
        retained.window.len() + retained.limbo.len()
    }

    /// Versions freed by reclamation so far.
    pub fn versions_reclaimed(&self) -> u64 {
        self.retained.lock().expect("snapshot retention lock").reclaimed
    }

    /// The cell's retention policy.
    pub fn retention(&self) -> RetentionPolicy {
        self.policy
    }
}

impl Drop for SnapshotCell {
    fn drop(&mut self) {
        // Balance the current version's outstanding `into_raw` count.
        // SAFETY: `&mut self` — no reader can be mid-`load`.
        unsafe {
            drop(Arc::from_raw(self.current.load(Ordering::Acquire)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A snapshot whose content is a pure function of its version:
    /// `tables = version + 7`, `rows = 3 * version` (what
    /// `synthetic_for_soak` stamps). Every test that loads a snapshot
    /// re-checks this canary, so a load that materialised freed or
    /// foreign memory trips an assertion even outside miri.
    fn snap(version: u64) -> Arc<KbSnapshot> {
        Arc::new(KbSnapshot::synthetic_for_soak(version, 0))
    }

    fn check_canary(s: &KbSnapshot) {
        assert_eq!(s.tables() as u64, s.version() + 7, "canary: tables drifted from version");
        assert_eq!(s.rows() as u64, 3 * s.version(), "canary: rows drifted from version");
    }

    #[test]
    fn load_returns_latest_published() {
        let cell = SnapshotCell::new(snap(0), RetentionPolicy::KeepAll);
        let slot = cell.register_slot();
        assert_eq!(cell.load(&slot).version(), 0);
        cell.publish(snap(1));
        cell.publish(snap(2));
        assert_eq!(cell.load(&slot).version(), 2);
        assert_eq!(cell.version(), 2);
        assert_eq!(cell.versions_retained(), 3);
        assert_eq!(cell.versions_reclaimed(), 0);
    }

    #[test]
    fn keep_all_serves_every_version() {
        let cell = SnapshotCell::new(snap(0), RetentionPolicy::KeepAll);
        cell.publish(snap(1));
        cell.publish(snap(2));
        for v in 0..=2 {
            let s = cell.snapshot_at(v).expect("retained");
            assert_eq!(s.version(), v);
            check_canary(&s);
        }
        assert_eq!(
            cell.snapshot_at(3).err(),
            Some(SnapshotAtError::NotYetPublished { version: 3, latest: 2 })
        );
        assert_eq!(cell.oldest_retained(), 0);
    }

    #[test]
    fn keep_last_reclaims_behind_the_window() {
        let cell = SnapshotCell::new(snap(0), RetentionPolicy::KeepLast(3));
        for v in 1..=10 {
            cell.publish(snap(v));
        }
        // Quiescent: limbo drains on every publish, so exactly the
        // window is resident and everything older was freed.
        assert_eq!(cell.versions_retained(), 3);
        assert_eq!(cell.versions_reclaimed(), 8);
        assert_eq!(cell.oldest_retained(), 8);
        for v in 8..=10 {
            check_canary(&cell.snapshot_at(v).expect("inside the window"));
        }
        for v in 0..8 {
            assert_eq!(
                cell.snapshot_at(v).err(),
                Some(SnapshotAtError::VersionReclaimed { version: v, oldest_retained: 8 }),
                "outside the window must be a typed rejection"
            );
        }
    }

    #[test]
    fn keep_last_zero_clamps_to_current() {
        let cell = SnapshotCell::new(snap(0), RetentionPolicy::KeepLast(0));
        cell.publish(snap(1));
        assert_eq!(cell.versions_retained(), 1, "the current version is always resident");
        check_canary(&cell.snapshot_at(1).expect("current"));
    }

    #[test]
    fn loaded_snapshot_outlives_supersession_and_reclamation() {
        let cell = SnapshotCell::new(snap(0), RetentionPolicy::KeepLast(1));
        let slot = cell.register_slot();
        let pinned = cell.load(&slot);
        for v in 1..=5 {
            cell.publish(snap(v));
        }
        // Version 0 was reclaimed from the cell's perspective...
        assert!(matches!(
            cell.snapshot_at(0),
            Err(SnapshotAtError::VersionReclaimed { version: 0, .. })
        ));
        // ...but the reader's own Arc keeps it alive and intact.
        assert_eq!(pinned.version(), 0, "a pinned version never changes under the reader");
        check_canary(&pinned);
        assert_eq!(cell.load(&slot).version(), 5);
    }

    /// The interleaving the epoch protocol exists for: a reader pins and
    /// reads the raw pointer, then parks *before* incrementing the
    /// refcount, while the writer publishes past the retention window and
    /// tries to reclaim. The pinned epoch must hold the version in limbo
    /// (no use-after-free when the reader resumes); the unpin must then
    /// release it. White-box: drives the slot and pointer directly, in
    /// exactly the order `load` does.
    #[test]
    fn parked_reader_between_pin_and_increment_blocks_reclaim() {
        let cell = SnapshotCell::new(snap(0), RetentionPolicy::KeepLast(1));
        let slot = cell.register_slot();

        // Reader half 1: pin the epoch, load the raw pointer... and park.
        slot.state.pinned.store(cell.epoch.load(Ordering::SeqCst), Ordering::SeqCst);
        let parked_ptr = cell.current.load(Ordering::SeqCst);

        // Writer: supersede version 0 several times over; each publish
        // runs a reclaim pass.
        for v in 1..=4 {
            cell.publish(snap(v));
        }
        assert_eq!(
            cell.versions_reclaimed(),
            0,
            "a version observable by the parked reader must not be freed"
        );
        assert_eq!(cell.versions_retained(), 1 + 4, "window (1) plus all of limbo (4)");

        // Reader half 2: resume — increment and materialise. The memory
        // must still be the version-0 snapshot, canary intact.
        let resumed = unsafe {
            Arc::increment_strong_count(parked_ptr);
            Arc::from_raw(parked_ptr)
        };
        assert_eq!(resumed.version(), 0);
        check_canary(&resumed);
        slot.state.pinned.store(SLOT_IDLE, Ordering::Release);

        // Unpinned: the next reclaim frees all four limbo versions.
        cell.reclaim();
        assert_eq!(cell.versions_reclaimed(), 4);
        assert_eq!(cell.versions_retained(), 1);
        // The reader's Arc still backs its copy.
        check_canary(&resumed);
    }

    /// A stale pin — stored from an epoch read long ago, after the writer
    /// already advanced past it — must be conservative (block reclaim),
    /// and a load through it must still return the *current* version:
    /// the swapped-out one is unreachable via the pointer by then.
    #[test]
    fn stale_pin_is_conservative_not_unsound() {
        let cell = SnapshotCell::new(snap(0), RetentionPolicy::KeepLast(1));
        let slot = cell.register_slot();
        let stale_epoch = cell.epoch.load(Ordering::SeqCst);

        for v in 1..=3 {
            cell.publish(snap(v));
        }
        assert_eq!(cell.versions_reclaimed(), 3, "idle slot blocks nothing");

        // The reader resumes with its stale epoch: pin, then load.
        slot.state.pinned.store(stale_epoch, Ordering::SeqCst);
        let ptr = cell.current.load(Ordering::SeqCst);
        let loaded = unsafe {
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        };
        assert_eq!(loaded.version(), 3, "a late pointer load sees the current version");
        check_canary(&loaded);

        // While pinned at the stale epoch, evictions stay in limbo.
        cell.publish(snap(4));
        assert_eq!(cell.versions_reclaimed(), 3, "stale pin holds limbo conservatively");
        slot.state.pinned.store(SLOT_IDLE, Ordering::Release);
        cell.reclaim();
        assert_eq!(cell.versions_reclaimed(), 4);
    }

    #[test]
    fn dropped_slots_are_pruned_and_release_limbo() {
        let cell = SnapshotCell::new(snap(0), RetentionPolicy::KeepLast(1));
        let slot = cell.register_slot();
        // Park the slot pinned, then drop it (a reader thread that died
        // mid-protocol can only do this by leaking the load, but the
        // registry must still not grow unboundedly under churn).
        slot.state.pinned.store(cell.epoch.load(Ordering::SeqCst), Ordering::SeqCst);
        drop(slot);
        cell.publish(snap(1));
        // The dropped slot was pruned before the scan, so nothing blocks.
        assert_eq!(cell.versions_reclaimed(), 1);
        // Churn: registering and dropping many slots leaves no residue.
        for _ in 0..100 {
            let s = cell.register_slot();
            let _ = cell.load(&s);
        }
        cell.publish(snap(2));
        let retained = cell.retained.lock().unwrap();
        assert!(retained.slots.len() <= 1, "orphaned slots must be pruned, not accumulated");
    }

    #[test]
    #[should_panic(expected = "ReaderSlot used with a cell it was not registered with")]
    fn foreign_slot_is_rejected() {
        let a = SnapshotCell::new(snap(0), RetentionPolicy::default());
        let b = SnapshotCell::new(snap(0), RetentionPolicy::default());
        let slot_b = b.register_slot();
        let _ = a.load(&slot_b);
    }

    #[test]
    fn concurrent_loads_during_publishes_are_consistent() {
        let cell = Arc::new(SnapshotCell::new(snap(0), RetentionPolicy::KeepLast(2)));
        let iterations = if cfg!(miri) { 40 } else { 1000 };
        let publishes = if cfg!(miri) { 10 } else { 50 };
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                scope.spawn(move || {
                    let slot = cell.register_slot();
                    let mut last = 0u64;
                    for _ in 0..iterations {
                        let s = cell.load(&slot);
                        check_canary(&s);
                        assert!(s.version() >= last, "versions must be monotonic per reader");
                        last = s.version();
                    }
                });
            }
            for v in 1..=publishes {
                cell.publish(snap(v));
            }
        });
        assert_eq!(cell.version(), publishes);
        cell.reclaim();
        assert_eq!(cell.versions_retained(), 2, "quiescent cell retains exactly the window");
        assert_eq!(cell.versions_reclaimed(), publishes - 1);
    }

    /// Seeded randomized interleaving stress: four readers load through
    /// the full protocol with randomized pauses injected at the two
    /// hazard points (between pin and pointer load, and between pointer
    /// load and increment — driven white-box so the pause really lands
    /// inside the window), while the writer publishes with its own
    /// randomized pauses and a tight retention window, reclaiming
    /// aggressively. Every materialised snapshot must carry an intact
    /// canary, and every reader's version sequence must be monotone.
    /// Miri-sized under `cfg(miri)`; run it there to machine-check the
    /// absence of use-after-free.
    #[test]
    fn randomized_interleaving_stress_yields_no_use_after_free() {
        use rand::{Rng, SeedableRng};

        let publishes: u64 = if cfg!(miri) { 30 } else { 600 };
        let loads_per_reader = if cfg!(miri) { 30 } else { 800 };

        for seed in 0..3u64 {
            let cell = Arc::new(SnapshotCell::new(snap(0), RetentionPolicy::KeepLast(2)));
            std::thread::scope(|scope| {
                for reader_id in 0..4u64 {
                    let cell = Arc::clone(&cell);
                    scope.spawn(move || {
                        let mut rng =
                            rand_chacha::ChaCha8Rng::seed_from_u64(seed * 100 + reader_id);
                        let slot = cell.register_slot();
                        let mut last = 0u64;
                        for _ in 0..loads_per_reader {
                            // White-box load with pauses injected at the
                            // two points an unlucky scheduler could park
                            // a real reader.
                            slot.state
                                .pinned
                                .store(cell.epoch.load(Ordering::SeqCst), Ordering::SeqCst);
                            if rng.gen_range(0..4u32) == 0 {
                                std::thread::yield_now();
                            }
                            let ptr = cell.current.load(Ordering::SeqCst);
                            if rng.gen_range(0..4u32) == 0 {
                                std::thread::yield_now();
                            }
                            // SAFETY: identical to `load` — the pin was
                            // announced before the pointer load.
                            let s = unsafe {
                                Arc::increment_strong_count(ptr);
                                Arc::from_raw(ptr)
                            };
                            slot.state.pinned.store(SLOT_IDLE, Ordering::Release);
                            check_canary(&s);
                            assert!(s.version() >= last, "monotone versions per reader");
                            last = s.version();
                            if rng.gen_range(0..8u32) == 0 {
                                std::thread::yield_now();
                            }
                        }
                    });
                }
                let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed.wrapping_mul(31) + 7);
                for v in 1..=publishes {
                    cell.publish(snap(v));
                    if rng.gen_range(0..3u32) == 0 {
                        std::thread::yield_now();
                    }
                }
            });
            cell.reclaim();
            assert_eq!(cell.versions_retained(), 2);
            assert_eq!(cell.versions_reclaimed(), publishes - 1);
            for v in 0..publishes - 1 {
                assert!(
                    matches!(
                        cell.snapshot_at(v),
                        Err(SnapshotAtError::VersionReclaimed { .. })
                    ),
                    "reclaimed versions reject typed, never panic (v{v})"
                );
            }
        }
    }

    /// The writer critical section (what `versions_retained` waits on)
    /// must stay pure bookkeeping: publish must not hold the retention
    /// lock across the pointer swap. Probed behaviourally — a thread
    /// holding the retention lock must not be able to stop a publish from
    /// making the new version visible to wait-free loads.
    #[test]
    fn publish_swaps_outside_the_retention_lock() {
        let cell = Arc::new(SnapshotCell::new(snap(0), RetentionPolicy::KeepAll));
        let lock = cell.retained.lock().unwrap();
        let seen = std::thread::scope(|scope| {
            let cell2 = Arc::clone(&cell);
            let publisher = scope.spawn(move || {
                // Swap + epoch advance happen before the (blocked)
                // bookkeeping; signal how far we got via the version a
                // fresh load observes.
                cell2.publish(snap(1));
            });
            // Wait (bounded) for the swap to land while *holding* the
            // retention lock the whole time.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            let mut observed = 0;
            while std::time::Instant::now() < deadline {
                // `load` is lock-free, so it cannot deadlock against the
                // held retention lock. (No registered slot needed for the
                // assertion: use the raw pointer + canary, read-only.)
                let ptr = cell.current.load(Ordering::SeqCst);
                // SAFETY: KeepAll — nothing is ever freed, and the lock
                // we hold blocks the window push but not liveness (the
                // publish argument itself keeps the new version alive).
                let v = unsafe { (*ptr).version() };
                if v == 1 {
                    observed = v;
                    break;
                }
                std::thread::yield_now();
            }
            drop(lock); // let the publisher finish its bookkeeping
            publisher.join().expect("publisher");
            observed
        });
        assert_eq!(seen, 1, "publish must swap before (not inside) the retention lock");
        assert_eq!(cell.versions_retained(), 2);
    }
}
