//! The published-snapshot cell: wait-free reads, versioned history.
//!
//! [`SnapshotCell`] is a hand-rolled `Arc` swap. The constraint it is
//! built for: **readers must be wait-free** — a query must never block on
//! (or even contend a lock with) an ingest publishing the next version.
//! `RwLock<Arc<KbSnapshot>>` fails that bar (a writer stalls every
//! reader); this cell's [`SnapshotCell::load`] is one atomic pointer load
//! plus one atomic reference-count increment, unconditionally.
//!
//! ## How reclamation works
//!
//! The classic hazard of a raw `AtomicPtr<T>` swap is the load/increment
//! race: a reader loads the pointer, the writer swaps and drops the old
//! value, the reader increments a freed count. The cell sidesteps the
//! hazard instead of solving it: superseded snapshots are never dropped
//! while the cell lives. `publish` moves the outgoing version's ownership
//! into a history vector (under a writer-side mutex readers never touch),
//! so every pointer a reader can possibly have observed stays backed by a
//! strong count until the cell itself is dropped — at which point no
//! reader can hold `&self` anymore.
//!
//! Retention is therefore the price of wait-freedom: all published
//! versions stay resident for the cell's lifetime. Versions share
//! *untouched* per-class slices physically (`Arc<ClassSnapshot>`, see
//! [`crate::snapshot`]), so a version's marginal footprint is what its
//! batch touched — but a class that every batch touches is re-projected
//! per version, so sustained ingest of a growing class accumulates
//! roughly O(versions × class size) across the history. That is fine for
//! bounded ingest runs (and the history doubles as a feature:
//! [`SnapshotCell::snapshot_at`] serves any historical version, which the
//! snapshot-isolation tests use to re-check reader results after the
//! fact), but an indefinitely running server needs a reclamation story —
//! safely dropping a superseded version requires knowing no reader is
//! paused between the pointer load and the count increment, i.e. an
//! epoch/hazard scheme. That is tracked as a ROADMAP item; until then,
//! restart the serving process to compact, exactly as with any
//! append-only store.

use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{Arc, Mutex};

use crate::snapshot::KbSnapshot;

/// Lock-free publication point for [`KbSnapshot`] versions.
///
/// One writer publishes (the serve pipeline, serialised by `&mut self` on
/// ingest); any number of readers [`load`](SnapshotCell::load) concurrently
/// and wait-free. See the [module docs](self) for the reclamation scheme.
#[derive(Debug)]
pub struct SnapshotCell {
    /// Points at the data of the current version's `Arc`. The pointed-to
    /// snapshot is owned either by this field (one outstanding `into_raw`
    /// count for the current version) or by `history` (every superseded
    /// version) — never unowned.
    current: AtomicPtr<KbSnapshot>,
    /// Every superseded version, oldest first. Writer-side only.
    history: Mutex<Vec<Arc<KbSnapshot>>>,
}

impl SnapshotCell {
    /// Create a cell publishing `initial` as the current version.
    /// Crate-internal: cells are only created (and written) by
    /// [`crate::ServePipeline`], which is what enforces the single-writer
    /// requirement at the type level.
    pub(crate) fn new(initial: Arc<KbSnapshot>) -> Self {
        Self {
            current: AtomicPtr::new(Arc::into_raw(initial).cast_mut()),
            history: Mutex::new(Vec::new()),
        }
    }

    /// The current snapshot. **Wait-free**: one atomic load, one atomic
    /// increment, no locks, no spinning — regardless of concurrent
    /// publishes. The returned `Arc` pins that version for as long as the
    /// caller holds it.
    pub fn load(&self) -> Arc<KbSnapshot> {
        let ptr = self.current.load(Ordering::Acquire);
        // SAFETY: `ptr` was produced by `Arc::into_raw` (in `new` or
        // `publish`) and its snapshot is kept alive for the cell's whole
        // lifetime — by the outstanding `into_raw` count while current,
        // and by `history` once superseded (`publish` transfers ownership
        // *after* swapping, and history is never truncated). `&self`
        // proves the cell is alive, so the count can be incremented and
        // re-materialised as an owning `Arc`.
        unsafe {
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        }
    }

    /// Publish a new version and retire the current one into history.
    ///
    /// Writer-side and crate-internal: publishes must be serialised, and
    /// keeping this `pub(crate)` makes the only writer
    /// [`crate::ServePipeline::ingest`] (`&mut self`), so the monotonicity
    /// contract cannot be broken by a second publisher racing the swap
    /// and the history push. Readers are unaffected either way: a reader
    /// that loaded the old pointer just before the swap still increments a
    /// count that history keeps backed.
    pub(crate) fn publish(&self, snapshot: Arc<KbSnapshot>) {
        // The lock is held across swap *and* push: otherwise a concurrent
        // `snapshot_at`/`version_count` could observe the post-swap,
        // pre-push window in which the superseded version is in neither
        // `current` nor `history` — violating the all-versions-retained
        // contract. `load` never touches the lock, so reader wait-freedom
        // is unaffected.
        let mut history = self.history.lock().expect("snapshot history lock");
        let new_raw = Arc::into_raw(snapshot).cast_mut();
        let old_raw = self.current.swap(new_raw, Ordering::AcqRel);
        // SAFETY: `old_raw` carries the `into_raw` count minted when it was
        // published; re-materialising transfers that count into `history`.
        let old = unsafe { Arc::from_raw(old_raw) };
        history.push(old);
    }

    /// The current version number (equivalent to `self.load().version()`).
    pub fn version(&self) -> u64 {
        self.load().version()
    }

    /// A specific published version, if it exists: the current one or any
    /// superseded one (all versions are retained, see the module docs).
    /// Takes the history lock — meant for diagnostics and verification,
    /// not the hot query path.
    pub fn snapshot_at(&self, version: u64) -> Option<Arc<KbSnapshot>> {
        let current = self.load();
        if current.version() == version {
            return Some(current);
        }
        self.history
            .lock()
            .expect("snapshot history lock")
            .iter()
            .find(|s| s.version() == version)
            .cloned()
    }

    /// Number of versions published so far (history + current).
    pub fn version_count(&self) -> usize {
        self.history.lock().expect("snapshot history lock").len() + 1
    }
}

impl Drop for SnapshotCell {
    fn drop(&mut self) {
        // Balance the current version's outstanding `into_raw` count.
        // SAFETY: `&mut self` — no reader can be mid-`load`.
        unsafe {
            drop(Arc::from_raw(self.current.load(Ordering::Acquire)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(version: u64) -> Arc<KbSnapshot> {
        let mut s = KbSnapshot::empty();
        // Test-only: fabricate distinct versions without a pipeline.
        s.set_version_for_tests(version);
        Arc::new(s)
    }

    #[test]
    fn load_returns_latest_published() {
        let cell = SnapshotCell::new(snap(0));
        assert_eq!(cell.load().version(), 0);
        cell.publish(snap(1));
        cell.publish(snap(2));
        assert_eq!(cell.load().version(), 2);
        assert_eq!(cell.version(), 2);
        assert_eq!(cell.version_count(), 3);
    }

    #[test]
    fn history_serves_every_version() {
        let cell = SnapshotCell::new(snap(0));
        cell.publish(snap(1));
        cell.publish(snap(2));
        for v in 0..=2 {
            assert_eq!(cell.snapshot_at(v).expect("retained").version(), v);
        }
        assert!(cell.snapshot_at(3).is_none());
    }

    #[test]
    fn loaded_snapshot_outlives_supersession() {
        let cell = SnapshotCell::new(snap(0));
        let pinned = cell.load();
        cell.publish(snap(1));
        assert_eq!(pinned.version(), 0, "a pinned version never changes under the reader");
        assert_eq!(cell.load().version(), 1);
    }

    #[test]
    fn concurrent_loads_during_publishes_are_consistent() {
        let cell = Arc::new(SnapshotCell::new(snap(0)));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                scope.spawn(move || {
                    let mut last = 0u64;
                    for _ in 0..1000 {
                        let v = cell.load().version();
                        assert!(v >= last, "versions must be monotonic per reader");
                        last = v;
                    }
                });
            }
            for v in 1..=50 {
                cell.publish(snap(v));
            }
        });
        assert_eq!(cell.load().version(), 50);
    }
}
