//! The entity produced from a row cluster.

use ltee_kb::ClassKey;
use ltee_types::Value;
use ltee_webtables::RowRef;
use serde::{Deserialize, Serialize};

/// A candidate value for a property, before fusion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateValue {
    /// The property the candidate belongs to.
    pub property: String,
    /// The candidate value.
    pub value: Value,
    /// The row the candidate came from.
    pub row: RowRef,
    /// The candidate's score (depends on the scoring method).
    pub score: f64,
}

/// An entity created from a row cluster: labels plus fused facts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Entity {
    /// The class of the entity.
    pub class: ClassKey,
    /// The rows the entity was created from.
    pub rows: Vec<RowRef>,
    /// Labels extracted from the label attribute of the rows, most frequent
    /// first.
    pub labels: Vec<String>,
    /// Fused facts: property → (value, support score).
    pub facts: Vec<(String, Value, f64)>,
}

impl Entity {
    /// The canonical (most frequent) label.
    pub fn canonical_label(&self) -> &str {
        self.labels.first().map(String::as_str).unwrap_or("")
    }

    /// The fused value of a property, if present.
    pub fn fact(&self, property: &str) -> Option<&Value> {
        self.facts.iter().find(|(p, _, _)| p == property).map(|(_, v, _)| v)
    }

    /// Number of fused facts.
    pub fn fact_count(&self) -> usize {
        self.facts.len()
    }

    /// Number of rows backing the entity.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The distinct web tables the entity's rows came from, ascending by
    /// table id — the entity's table-level provenance, as served by the
    /// query layer alongside the fused facts.
    pub fn provenance_tables(&self) -> Vec<ltee_webtables::TableId> {
        let mut tables: Vec<_> = self.rows.iter().map(|r| r.table).collect();
        tables.sort_unstable();
        tables.dedup();
        tables
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltee_webtables::TableId;

    #[test]
    fn entity_accessors() {
        let e = Entity {
            class: ClassKey::Song,
            rows: vec![RowRef::new(TableId(1), 0), RowRef::new(TableId(2), 3)],
            labels: vec!["Hey Jude".into(), "Hey Jude (song)".into()],
            facts: vec![("runtime".into(), Value::Quantity(431.0), 2.0)],
        };
        assert_eq!(e.canonical_label(), "Hey Jude");
        assert_eq!(e.fact("runtime"), Some(&Value::Quantity(431.0)));
        assert!(e.fact("genre").is_none());
        assert_eq!(e.fact_count(), 1);
        assert_eq!(e.row_count(), 2);
    }

    #[test]
    fn provenance_tables_are_distinct_and_sorted() {
        let e = Entity {
            class: ClassKey::Song,
            rows: vec![
                RowRef::new(TableId(9), 0),
                RowRef::new(TableId(2), 3),
                RowRef::new(TableId(9), 4),
                RowRef::new(TableId(2), 1),
            ],
            labels: vec![],
            facts: vec![],
        };
        assert_eq!(e.provenance_tables(), vec![TableId(2), TableId(9)]);
        let empty = Entity { class: ClassKey::Song, rows: vec![], labels: vec![], facts: vec![] };
        assert!(empty.provenance_tables().is_empty());
    }

    #[test]
    fn empty_entity_is_harmless() {
        let e = Entity { class: ClassKey::Settlement, rows: vec![], labels: vec![], facts: vec![] };
        assert_eq!(e.canonical_label(), "");
        assert_eq!(e.fact_count(), 0);
    }
}
