//! Candidate scoring, grouping, selection and fusion.

use std::collections::{BTreeMap, HashMap};

use ltee_kb::{ClassKey, KnowledgeBase};
use ltee_matching::CorpusMapping;
use ltee_types::{value_equivalent, DataType, EquivalenceConfig, Value};
use ltee_webtables::{Corpus, RowRef, TableId};
use serde::{Deserialize, Serialize};

use crate::entity::{CandidateValue, Entity};

/// The candidate scoring approaches of Section 3.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScoringMethod {
    /// All candidate values receive an equal score of 1.0.
    Voting,
    /// Knowledge-Based-Trust: the trustworthiness of the source attribute
    /// column, estimated as the proportion of its values that overlap with
    /// knowledge base facts of the matched property.
    Kbt,
    /// The attribute-to-property correspondence score assigned by the
    /// schema matching component.
    Matching,
}

impl ScoringMethod {
    /// All scoring methods in a stable order (Table 10 columns).
    pub const ALL: [ScoringMethod; 3] = [ScoringMethod::Voting, ScoringMethod::Kbt, ScoringMethod::Matching];

    /// Name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            ScoringMethod::Voting => "VOTING",
            ScoringMethod::Kbt => "KBT",
            ScoringMethod::Matching => "MATCHING",
        }
    }
}

/// Configuration of entity creation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntityCreationConfig {
    /// The candidate scoring method.
    pub scoring: ScoringMethod,
    /// Equivalence configuration used for grouping equal candidates.
    pub equivalence: EquivalenceConfig,
}

impl Default for EntityCreationConfig {
    fn default() -> Self {
        Self { scoring: ScoringMethod::Matching, equivalence: EquivalenceConfig::default() }
    }
}

/// Knowledge-Based-Trust scores per (table, column): the fraction of the
/// column's parsed values that overlap with any knowledge base value of the
/// matched property.
fn kbt_scores(corpus: &Corpus, mapping: &CorpusMapping, kb: &KnowledgeBase, class: ClassKey) -> HashMap<(TableId, usize), f64> {
    let tables: Vec<TableId> = mapping.tables_of_class(class).iter().map(|tm| tm.table).collect();
    kbt_scores_for_tables(corpus, mapping, kb, class, &tables)
}

/// [`ScoringMethod::Kbt`] scores restricted to the given tables.
///
/// A column's KBT score depends only on its own cells, its mapping and the
/// (frozen) knowledge base, so scores are computable table by table. The
/// incremental serve path uses this to score just a micro-batch's tables
/// and cache the result, instead of rescanning the whole accumulated
/// corpus on every ingest.
pub fn kbt_scores_for_tables(
    corpus: &Corpus,
    mapping: &CorpusMapping,
    kb: &KnowledgeBase,
    class: ClassKey,
    tables: &[TableId],
) -> HashMap<(TableId, usize), f64> {
    let eq = EquivalenceConfig::default();
    let mut scores = HashMap::new();
    for &table_id in tables {
        let Some(tm) = mapping.table(table_id) else { continue };
        if tm.class != Some(class) {
            continue;
        }
        let Some(table) = corpus.table(tm.table) else { continue };
        for (col, m) in tm.matched_columns() {
            let Some(prop) = kb.property_by_name(class, &m.property) else { continue };
            let kb_values = kb.property_values(prop.id);
            let sample: Vec<_> = kb_values.iter().take(300).collect();
            let mut total = 0usize;
            let mut hits = 0usize;
            for cell in &table.columns[col].cells {
                if cell.trim().is_empty() {
                    continue;
                }
                total += 1;
                if let Some(v) = ltee_types::parse_cell_as(cell, m.data_type) {
                    if sample.iter().any(|kv| value_equivalent(&v, kv, m.data_type, &eq)) {
                        hits += 1;
                    }
                }
            }
            let score = if total == 0 { 0.0 } else { hits as f64 / total as f64 };
            scores.insert((tm.table, col), score);
        }
    }
    scores
}

/// Create entities for every cluster of a clustering run.
pub fn create_entities(
    clusters: &[Vec<RowRef>],
    corpus: &Corpus,
    mapping: &CorpusMapping,
    kb: &KnowledgeBase,
    class: ClassKey,
    config: &EntityCreationConfig,
) -> Vec<Entity> {
    let kbt = match config.scoring {
        ScoringMethod::Kbt => Some(kbt_scores(corpus, mapping, kb, class)),
        _ => None,
    };
    create_entities_with_scores(clusters, corpus, mapping, kb, class, config, kbt.as_ref())
}

/// [`create_entities`] with precomputed KBT scores.
///
/// `kbt` is only consulted when `config.scoring` is
/// [`ScoringMethod::Kbt`]; pass a map built by [`kbt_scores_for_tables`]
/// (covering at least every table the clusters reference) to avoid the
/// full-corpus rescan that [`create_entities`] performs per call.
pub fn create_entities_with_scores(
    clusters: &[Vec<RowRef>],
    corpus: &Corpus,
    mapping: &CorpusMapping,
    kb: &KnowledgeBase,
    class: ClassKey,
    config: &EntityCreationConfig,
    kbt: Option<&HashMap<(TableId, usize), f64>>,
) -> Vec<Entity> {
    clusters
        .iter()
        .map(|rows| create_entity_inner(rows, corpus, mapping, kb, class, config, kbt))
        .collect()
}

/// Create a single entity from a cluster of rows.
pub fn create_entity(
    rows: &[RowRef],
    corpus: &Corpus,
    mapping: &CorpusMapping,
    kb: &KnowledgeBase,
    class: ClassKey,
    config: &EntityCreationConfig,
) -> Entity {
    let kbt = match config.scoring {
        ScoringMethod::Kbt => Some(kbt_scores(corpus, mapping, kb, class)),
        _ => None,
    };
    create_entity_inner(rows, corpus, mapping, kb, class, config, kbt.as_ref())
}

fn create_entity_inner(
    rows: &[RowRef],
    corpus: &Corpus,
    mapping: &CorpusMapping,
    kb: &KnowledgeBase,
    class: ClassKey,
    config: &EntityCreationConfig,
    kbt: Option<&HashMap<(TableId, usize), f64>>,
) -> Entity {
    // --- Labels --------------------------------------------------------------
    let mut label_counts: BTreeMap<String, usize> = BTreeMap::new();
    for &row in rows {
        let values = mapping.row_values(corpus, row);
        if !values.label.is_empty() {
            *label_counts.entry(values.label).or_insert(0) += 1;
        }
    }
    let mut labels: Vec<(String, usize)> = label_counts.into_iter().collect();
    labels.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let labels: Vec<String> = labels.into_iter().map(|(l, _)| l).collect();

    // --- Candidate collection and scoring ------------------------------------
    let mut candidates: BTreeMap<String, Vec<CandidateValue>> = BTreeMap::new();
    for &row in rows {
        let Some(tm) = mapping.table(row.table) else { continue };
        let Some(table) = corpus.table(row.table) else { continue };
        for (col, m) in tm.matched_columns() {
            let Some(cell) = table.cell(row.row, col) else { continue };
            let Some(value) = ltee_types::parse_cell_as(cell, m.data_type) else { continue };
            let score = match config.scoring {
                ScoringMethod::Voting => 1.0,
                ScoringMethod::Matching => m.score,
                ScoringMethod::Kbt => {
                    kbt.and_then(|k| k.get(&(row.table, col)).copied()).unwrap_or(0.5)
                }
            };
            candidates.entry(m.property.clone()).or_default().push(CandidateValue {
                property: m.property.clone(),
                value,
                row,
                score,
            });
        }
    }

    // --- Group, select, fuse ---------------------------------------------------
    let mut facts = Vec::new();
    for (property, cands) in candidates {
        let data_type = kb
            .property_by_name(class, &property)
            .map(|p| p.data_type)
            .unwrap_or_else(|| cands[0].value.data_type());
        if let Some((value, support)) = fuse_candidates(&cands, data_type, &config.equivalence) {
            facts.push((property, value, support));
        }
    }

    Entity { class, rows: rows.to_vec(), labels, facts }
}

/// Group equal candidates, select the group with the highest score sum, and
/// fuse it into one value. Returns the fused value and the winning group's
/// score sum.
pub fn fuse_candidates(
    candidates: &[CandidateValue],
    data_type: DataType,
    eq: &EquivalenceConfig,
) -> Option<(Value, f64)> {
    if candidates.is_empty() {
        return None;
    }
    // Grouping.
    let mut groups: Vec<Vec<&CandidateValue>> = Vec::new();
    for cand in candidates {
        match groups.iter_mut().find(|g| value_equivalent(&g[0].value, &cand.value, data_type, eq)) {
            Some(group) => group.push(cand),
            None => groups.push(vec![cand]),
        }
    }
    // Selection: highest sum of scores; ties broken towards the larger group
    // and then the first-seen group for determinism.
    let best = groups
        .iter()
        .enumerate()
        .max_by(|(ia, a), (ib, b)| {
            let sa: f64 = a.iter().map(|c| c.score).sum();
            let sb: f64 = b.iter().map(|c| c.score).sum();
            sa.partial_cmp(&sb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.len().cmp(&b.len()))
                .then_with(|| ib.cmp(ia))
        })
        .map(|(_, g)| g)?;
    let support: f64 = best.iter().map(|c| c.score).sum();

    // Fusion.
    let fused = match data_type {
        DataType::Text | DataType::InstanceReference => majority_value(best),
        DataType::NominalString | DataType::NominalInteger => best[0].value.clone(),
        DataType::Quantity => Value::Quantity(weighted_median(
            best.iter().filter_map(|c| c.value.as_f64().map(|v| (v, c.score))).collect(),
        )?),
        DataType::Date => {
            // Weighted median over the dates' linearisation, then pick the
            // candidate date closest to that median.
            let median = weighted_median(
                best.iter()
                    .filter_map(|c| c.value.as_date().map(|d| (d.approximate_days(), c.score)))
                    .collect(),
            )?;
            best.iter()
                .filter_map(|c| c.value.as_date().map(|d| (c, (d.approximate_days() - median).abs())))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(c, _)| c.value.clone())?
        }
    };
    Some((fused, support))
}

/// The most frequent value of a group (score-weighted), deterministic on ties.
fn majority_value(group: &[&CandidateValue]) -> Value {
    let mut weights: Vec<(String, f64, &Value)> = Vec::new();
    for cand in group {
        let key = cand.value.render();
        match weights.iter_mut().find(|(k, _, _)| *k == key) {
            Some((_, w, _)) => *w += cand.score,
            None => weights.push((key, cand.score, &cand.value)),
        }
    }
    weights
        .into_iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal).then_with(|| b.0.cmp(&a.0)))
        .map(|(_, _, v)| v.clone())
        .unwrap_or_else(|| group[0].value.clone())
}

/// Weighted median of `(value, weight)` pairs.
fn weighted_median(mut pairs: Vec<(f64, f64)>) -> Option<f64> {
    if pairs.is_empty() {
        return None;
    }
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let total: f64 = pairs.iter().map(|(_, w)| w.max(0.0)).sum();
    if total <= 0.0 {
        return Some(pairs[pairs.len() / 2].0);
    }
    let mut acc = 0.0;
    for (v, w) in &pairs {
        acc += w.max(0.0);
        if acc >= total / 2.0 {
            return Some(*v);
        }
    }
    Some(pairs[pairs.len() - 1].0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltee_types::Date;
    use ltee_webtables::TableId;

    fn cand(property: &str, value: Value, score: f64, row: usize) -> CandidateValue {
        CandidateValue { property: property.into(), value, row: RowRef::new(TableId(1), row), score }
    }

    #[test]
    fn scoring_method_names() {
        assert_eq!(ScoringMethod::Voting.name(), "VOTING");
        assert_eq!(ScoringMethod::ALL.len(), 3);
    }

    #[test]
    fn fuse_majority_for_instance_refs() {
        let cands = vec![
            cand("team", Value::InstanceRef("Packers".into()), 1.0, 0),
            cand("team", Value::InstanceRef("Packers".into()), 1.0, 1),
            cand("team", Value::InstanceRef("Bears".into()), 1.0, 2),
        ];
        let (v, support) =
            fuse_candidates(&cands, DataType::InstanceReference, &EquivalenceConfig::default()).unwrap();
        assert_eq!(v, Value::InstanceRef("Packers".into()));
        assert_eq!(support, 2.0);
    }

    #[test]
    fn fuse_respects_scores_over_counts() {
        let cands = vec![
            cand("team", Value::InstanceRef("Packers".into()), 0.1, 0),
            cand("team", Value::InstanceRef("Packers".into()), 0.1, 1),
            cand("team", Value::InstanceRef("Bears".into()), 0.9, 2),
        ];
        let (v, _) =
            fuse_candidates(&cands, DataType::InstanceReference, &EquivalenceConfig::default()).unwrap();
        assert_eq!(v, Value::InstanceRef("Bears".into()));
    }

    #[test]
    fn fuse_weighted_median_for_quantities() {
        let cands = vec![
            cand("populationTotal", Value::Quantity(1000.0), 1.0, 0),
            cand("populationTotal", Value::Quantity(1020.0), 1.0, 1),
            cand("populationTotal", Value::Quantity(5000.0), 1.0, 2),
        ];
        // 1000 and 1020 group together (2% tolerance), 5000 is separate.
        let (v, _) = fuse_candidates(&cands, DataType::Quantity, &EquivalenceConfig::default()).unwrap();
        let q = v.as_f64().unwrap();
        assert!((1000.0..=1020.0).contains(&q), "fused {q}");
    }

    #[test]
    fn fuse_dates_picks_median_candidate() {
        let cands = vec![
            cand("releaseDate", Value::Date(Date::year(1999)), 1.0, 0),
            cand("releaseDate", Value::Date(Date::year(1999)), 1.0, 1),
            cand("releaseDate", Value::Date(Date::year(2005)), 1.0, 2),
        ];
        let (v, _) = fuse_candidates(&cands, DataType::Date, &EquivalenceConfig::default()).unwrap();
        assert_eq!(v.as_date().unwrap().year, 1999);
    }

    #[test]
    fn fuse_nominal_group_is_exact() {
        let cands = vec![
            cand("number", Value::NominalInt(12), 1.0, 0),
            cand("number", Value::NominalInt(12), 1.0, 1),
            cand("number", Value::NominalInt(7), 1.0, 2),
        ];
        let (v, support) =
            fuse_candidates(&cands, DataType::NominalInteger, &EquivalenceConfig::default()).unwrap();
        assert_eq!(v, Value::NominalInt(12));
        assert_eq!(support, 2.0);
    }

    #[test]
    fn fuse_empty_candidates_is_none() {
        assert!(fuse_candidates(&[], DataType::Text, &EquivalenceConfig::default()).is_none());
    }

    #[test]
    fn weighted_median_basics() {
        assert_eq!(weighted_median(vec![(1.0, 1.0), (2.0, 1.0), (100.0, 1.0)]), Some(2.0));
        assert_eq!(weighted_median(vec![(5.0, 1.0)]), Some(5.0));
        assert_eq!(weighted_median(vec![]), None);
        // Heavy weight pulls the median.
        assert_eq!(weighted_median(vec![(1.0, 0.1), (2.0, 0.1), (10.0, 5.0)]), Some(10.0));
    }

    #[test]
    fn end_to_end_entity_creation_produces_correct_facts() {
        use ltee_kb::{generate_world, GeneratorConfig, Scale};
        use ltee_matching::{match_corpus, MatcherWeights, SchemaMatchingConfig};
        use ltee_webtables::{generate_corpus, CorpusConfig, GoldStandard};

        let world = generate_world(&GeneratorConfig::new(Scale::tiny(), 61));
        let corpus = generate_corpus(&world, &CorpusConfig::tiny());
        let mapping = match_corpus(
            &corpus,
            world.kb(),
            &MatcherWeights::default(),
            &SchemaMatchingConfig::default(),
            None,
        );
        let class = ClassKey::GridironFootballPlayer;
        let gold = GoldStandard::build(&world, &corpus, class);

        // Fuse the gold clusters directly (perfect clustering), then check
        // that a decent share of fused facts match the world ground truth.
        let clusters: Vec<Vec<RowRef>> = gold.clusters.iter().map(|c| c.rows.clone()).collect();
        for method in ScoringMethod::ALL {
            let config = EntityCreationConfig { scoring: method, ..Default::default() };
            let entities = create_entities(&clusters, &corpus, &mapping, world.kb(), class, &config);
            assert_eq!(entities.len(), clusters.len());

            let eq = EquivalenceConfig::lenient();
            let mut correct = 0usize;
            let mut total = 0usize;
            for (entity, cluster) in entities.iter().zip(gold.clusters.iter()) {
                let world_entity = world.entity(cluster.entity).unwrap();
                for (prop, value, _) in &entity.facts {
                    let Some(truth) = world_entity.fact(prop) else { continue };
                    total += 1;
                    let dtype = world.kb().property_by_name(class, prop).unwrap().data_type;
                    if value_equivalent(value, truth, dtype, &eq) {
                        correct += 1;
                    }
                }
            }
            assert!(total > 30, "{method:?}: too few facts fused ({total})");
            let acc = correct as f64 / total as f64;
            assert!(acc > 0.6, "{method:?}: fused fact accuracy {acc:.2}");
        }
    }

    #[test]
    fn kbt_scores_are_per_table_and_cached_fusion_matches_full_rescan() {
        use ltee_kb::{generate_world, GeneratorConfig, Scale};
        use ltee_matching::{match_corpus, MatcherWeights, SchemaMatchingConfig};
        use ltee_webtables::{generate_corpus, CorpusConfig, GoldStandard};

        let world = generate_world(&GeneratorConfig::new(Scale::tiny(), 63));
        let corpus = generate_corpus(&world, &CorpusConfig::tiny());
        let mapping = match_corpus(
            &corpus,
            world.kb(),
            &MatcherWeights::default(),
            &SchemaMatchingConfig::default(),
            None,
        );
        let class = ClassKey::GridironFootballPlayer;
        let all_tables: Vec<TableId> =
            mapping.tables_of_class(class).iter().map(|tm| tm.table).collect();
        assert!(all_tables.len() >= 2, "need several mapped tables");

        // Computing per table (in any grouping) equals one full pass.
        let full = kbt_scores_for_tables(&corpus, &mapping, world.kb(), class, &all_tables);
        let mut piecewise = HashMap::new();
        for chunk in all_tables.chunks(1) {
            piecewise.extend(kbt_scores_for_tables(&corpus, &mapping, world.kb(), class, chunk));
        }
        assert_eq!(full.len(), piecewise.len());
        for (key, value) in &full {
            assert_eq!(piecewise.get(key).map(|v| v.to_bits()), Some(value.to_bits()));
        }
        // Tables of other classes and unknown tables contribute nothing.
        assert!(kbt_scores_for_tables(&corpus, &mapping, world.kb(), class, &[TableId(u64::MAX)])
            .is_empty());

        // Fusing with the cached scores equals the rescanning entry point.
        let gold = GoldStandard::build(&world, &corpus, class);
        let clusters: Vec<Vec<RowRef>> = gold.clusters.iter().map(|c| c.rows.clone()).collect();
        let config = EntityCreationConfig { scoring: ScoringMethod::Kbt, ..Default::default() };
        let rescan = create_entities(&clusters, &corpus, &mapping, world.kb(), class, &config);
        let cached = create_entities_with_scores(
            &clusters,
            &corpus,
            &mapping,
            world.kb(),
            class,
            &config,
            Some(&full),
        );
        assert_eq!(rescan, cached);
    }

    #[test]
    fn entities_have_labels_from_rows() {
        use ltee_kb::{generate_world, GeneratorConfig, Scale};
        use ltee_matching::{match_corpus, MatcherWeights, SchemaMatchingConfig};
        use ltee_webtables::{generate_corpus, CorpusConfig, GoldStandard};

        let world = generate_world(&GeneratorConfig::new(Scale::tiny(), 62));
        let corpus = generate_corpus(&world, &CorpusConfig::tiny());
        let mapping = match_corpus(
            &corpus,
            world.kb(),
            &MatcherWeights::default(),
            &SchemaMatchingConfig::default(),
            None,
        );
        let class = ClassKey::Song;
        let gold = GoldStandard::build(&world, &corpus, class);
        let clusters: Vec<Vec<RowRef>> = gold.clusters.iter().map(|c| c.rows.clone()).collect();
        let entities =
            create_entities(&clusters, &corpus, &mapping, world.kb(), class, &EntityCreationConfig::default());
        let with_labels = entities.iter().filter(|e| !e.labels.is_empty()).count();
        assert!(with_labels as f64 > entities.len() as f64 * 0.9);
    }
}
