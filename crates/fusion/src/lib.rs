//! # ltee-fusion
//!
//! Entity creation (paper Section 3.3): turning a cluster of rows into an
//! entity described according to the knowledge base schema.
//!
//! An entity consists of one or more labels (extracted from the label
//! attribute of the cluster's rows) and a set of fused property values.
//! Because a cluster usually contributes several candidate values per
//! property, candidates are fused with the paper's four-step method:
//!
//! 1. **Scoring** — [`ScoringMethod::Voting`] (all candidates equal),
//!    [`ScoringMethod::Kbt`] (Knowledge-Based-Trust: the trustworthiness of
//!    the source attribute, estimated from how well its values overlap with
//!    the knowledge base) or [`ScoringMethod::Matching`] (the
//!    attribute-to-property correspondence score from schema matching).
//! 2. **Grouping** — equal values (under the data type's equivalence
//!    function) are grouped.
//! 3. **Selection** — the group with the highest sum of candidate scores is
//!    selected.
//! 4. **Fusion** — the group is fused into one value: majority value for
//!    text and instance references, weighted median for quantities and
//!    dates, and the (identical) value for nominals.

pub mod entity;
pub mod fuse;

pub use entity::{CandidateValue, Entity};
pub use fuse::{
    create_entities, create_entities_with_scores, create_entity, kbt_scores_for_tables,
    EntityCreationConfig, ScoringMethod,
};
