//! Adversarial near-duplicate label flood: a small entity pool rendered
//! over and over under heavy typo and qualifier noise, stress-testing the
//! fuzzy index and the clustering's ability to keep variants together
//! without merging distinct entities.
//!
//! The body lives in [`ltee::examples::near_duplicate_flood`] so the
//! golden-snapshot test (`tests/golden_examples.rs`) can pin its output.
//!
//! Run with: `cargo run --release --example near_duplicate_flood`

fn main() {
    ltee::examples::near_duplicate_flood(&mut std::io::stdout().lock()).expect("writable stdout");
}
