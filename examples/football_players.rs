//! Football-player scenario: extend the knowledge base with long-tail
//! gridiron football players found in web tables (the paper's motivating
//! Agent-branch class), then evaluate against the gold standard and report
//! per-property densities of the new players.
//!
//! The body lives in [`ltee::examples::football_players`] so the
//! golden-snapshot test (`tests/golden_examples.rs`) can capture and pin
//! its exact output.
//!
//! Run with: `cargo run --release --example football_players`

fn main() {
    ltee::examples::football_players(&mut std::io::stdout().lock()).expect("writable stdout");
}
