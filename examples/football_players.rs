//! Football-player scenario: extend the knowledge base with long-tail
//! gridiron football players found in web tables (the paper's motivating
//! Agent-branch class), then evaluate against the gold standard and report
//! per-property densities of the new players.
//!
//! Run with: `cargo run --release --example football_players`

use ltee_core::prelude::*;
use ltee_eval::{evaluate_facts, evaluate_new_instances};

fn main() {
    let world = generate_world(&GeneratorConfig::new(Scale::tiny(), 21));
    let corpus = generate_corpus(&world, &CorpusConfig::tiny());
    let golds: Vec<GoldStandard> =
        CLASS_KEYS.iter().map(|&c| GoldStandard::build(&world, &corpus, c)).collect();

    let config = PipelineConfig::fast();
    let models = train_models(&corpus, world.kb(), &golds, &config).expect("trainable corpus");
    let pipeline = Pipeline::new(world.kb(), models, config);
    let output = pipeline.run(&corpus).expect("non-empty corpus");

    let class = ClassKey::GridironFootballPlayer;
    let class_output = output.class(class).expect("football player tables present");
    let gold = golds.iter().find(|g| g.class == class).expect("gold standard built");

    // New instances found (paper Table 9 style).
    let outcomes = class_output.outcomes();
    let instances_eval = evaluate_new_instances(&class_output.entities, &outcomes, gold);
    println!(
        "new football players: P={:.2} R={:.2} F1={:.2} ({} returned, {} in gold)",
        instances_eval.precision,
        instances_eval.recall,
        instances_eval.f1,
        instances_eval.returned_new,
        instances_eval.gold_new
    );

    // Facts found (paper Table 10 style).
    let facts_eval = evaluate_facts(&class_output.entities, &outcomes, gold, world.kb(), class);
    println!(
        "facts of new players: P={:.2} R={:.2} F1={:.2} ({} facts returned)",
        facts_eval.precision, facts_eval.recall, facts_eval.f1, facts_eval.returned_facts
    );

    // Property densities of the new players (paper Table 12 style).
    let new_entities = class_output.new_entities();
    let mut counts: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for entity in &new_entities {
        for (prop, _, _) in &entity.facts {
            *counts.entry(prop.as_str()).or_insert(0) += 1;
        }
    }
    println!("\nproperty densities of the {} new players:", new_entities.len());
    let mut rows: Vec<(&str, usize)> = counts.into_iter().collect();
    rows.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    for (prop, count) in rows {
        let density = count as f64 / new_entities.len().max(1) as f64;
        println!("  {prop:<16} {count:>4} facts  ({:.0} %)", density * 100.0);
    }
}
