//! Song scenario: the hardest class in the paper because of homonyms (cover
//! versions, re-releases). This example contrasts the three fusion scoring
//! methods (VOTING, KBT, MATCHING) on the songs found in the corpus and
//! shows how homonym-heavy clusters behave.
//!
//! Run with: `cargo run --release --example song_discography`

use ltee_core::prelude::*;
use ltee_eval::evaluate_facts;
use ltee_fusion::{create_entities, EntityCreationConfig};

fn main() {
    let world = generate_world(&GeneratorConfig::new(Scale::tiny(), 33));
    let corpus = generate_corpus(&world, &CorpusConfig::tiny());
    let golds: Vec<GoldStandard> =
        CLASS_KEYS.iter().map(|&c| GoldStandard::build(&world, &corpus, c)).collect();

    let config = PipelineConfig::fast();
    let models = train_models(&corpus, world.kb(), &golds, &config).expect("trainable corpus");
    let pipeline = Pipeline::new(world.kb(), models, config.clone());
    let output = pipeline.run(&corpus).expect("non-empty corpus");

    let class = ClassKey::Song;
    let class_output = output.class(class).expect("song tables present");
    let gold = golds.iter().find(|g| g.class == class).expect("gold standard built");

    // Homonym pressure in the gold standard.
    let mut label_counts: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    for cluster in &gold.clusters {
        *label_counts.entry(cluster.homonym_group).or_insert(0) += 1;
    }
    let homonym_clusters = label_counts.values().filter(|&&c| c > 1).count();
    println!(
        "gold standard: {} song clusters, {} homonym groups with more than one cluster",
        gold.clusters.len(),
        homonym_clusters
    );

    // Compare the fusion scoring methods on the system's clusters.
    let outcomes = class_output.outcomes();
    println!("\nfacts-found F1 by fusion scoring method (system clustering):");
    for method in ScoringMethod::ALL {
        let fusion = EntityCreationConfig { scoring: method, ..Default::default() };
        let entities = create_entities(
            &class_output.clusters,
            &corpus,
            &output.mapping,
            world.kb(),
            class,
            &fusion,
        );
        let eval = evaluate_facts(&entities, &outcomes, gold, world.kb(), class);
        println!("  {:<9} P={:.2} R={:.2} F1={:.2}", method.name(), eval.precision, eval.recall, eval.f1);
    }

    // Show a few new songs with their fused descriptions.
    println!("\nsample of new songs:");
    for entity in class_output.new_entities().iter().take(5) {
        let artist = entity.fact("musicalArtist").map(|v| v.to_string()).unwrap_or_else(|| "?".into());
        let runtime = entity.fact("runtime").map(|v| v.to_string()).unwrap_or_else(|| "?".into());
        println!(
            "  `{}` by {} ({} s) — {} supporting rows",
            entity.canonical_label(),
            artist,
            runtime,
            entity.row_count()
        );
    }
}
