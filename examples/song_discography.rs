//! Song scenario: the hardest class in the paper because of homonyms (cover
//! versions, re-releases). This example contrasts the three fusion scoring
//! methods (VOTING, KBT, MATCHING) on the songs found in the corpus and
//! shows how homonym-heavy clusters behave.
//!
//! The body lives in [`ltee::examples::song_discography`] so the
//! golden-snapshot test (`tests/golden_examples.rs`) can capture and pin
//! its exact output.
//!
//! Run with: `cargo run --release --example song_discography`

fn main() {
    ltee::examples::song_discography(&mut std::io::stdout().lock()).expect("writable stdout");
}
