//! Novel-entity-heavy stream: more than 80 % of the rows describe entities
//! absent from the knowledge base — the paper's long-tail regime pushed to
//! the extreme, where new-detection does almost all the work.
//!
//! The body lives in [`ltee::examples::novel_entity_stream`] so the
//! golden-snapshot test (`tests/golden_examples.rs`) can pin its output.
//!
//! Run with: `cargo run --release --example novel_entity_stream`

fn main() {
    ltee::examples::novel_entity_stream(&mut std::io::stdout().lock()).expect("writable stdout");
}
