//! Train-once / serve-many walkthrough: train the models on one corpus,
//! persist them as a versioned binary artifact, load the artifact into an
//! `IncrementalPipeline`, and ingest a stream of micro-batches of new web
//! tables without ever retraining — exactly the serving topology a
//! production deployment uses (one offline trainer, N stateless loaders).
//!
//! Run with: `cargo run --release --example incremental_serving`

use ltee_core::prelude::*;

fn main() {
    // ── Train phase (offline, once) ─────────────────────────────────────
    let world = generate_world(&GeneratorConfig::new(Scale::tiny(), 42));
    let corpus = generate_corpus(&world, &CorpusConfig::tiny());
    let golds: Vec<GoldStandard> =
        CLASS_KEYS.iter().map(|&c| GoldStandard::build(&world, &corpus, c)).collect();
    let config = PipelineConfig::fast();
    let models = train_models(&corpus, world.kb(), &golds, &config).expect("trainable corpus");

    let artifact = ModelArtifact::new(models, &config);
    let path = std::env::temp_dir().join("ltee-incremental-serving.model");
    artifact.save(&path).expect("writable temp dir");
    let size = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!(
        "train : models trained and saved to {} ({} KiB, fingerprint {:#018x})",
        path.display(),
        size / 1024,
        artifact.fingerprint
    );

    // ── Serve phase (online, any number of processes) ───────────────────
    // A serving process loads the artifact once; the fingerprint check
    // refuses artifacts trained under a different inference configuration.
    // This process ingests with two class shards: per-class state is
    // grouped into shard buckets that run concurrently on the pool. A
    // shard plan is pure execution placement — the output (and the
    // equivalence assertion below) is bit-identical at every shard count,
    // and the fingerprint check passes because shards, like parallelism,
    // are excluded from the config fingerprint.
    let serve_config =
        PipelineConfig { shards: ShardPlan::Shards(2), ..config.clone() };
    let loaded = ModelArtifact::load(&path).expect("readable artifact");
    let mut serving = IncrementalPipeline::from_artifact(world.kb(), &loaded, serve_config)
        .expect("artifact matches the serve config");
    println!("serve : ingesting with {} class shards", serving.shard_count());

    // New tables arrive continuously; here the corpus stands in for the
    // stream, delivered in micro-batches of up to 8 tables, the way a
    // crawler hands over work.
    for (i, batch) in corpus.split_by_tables(8).iter().enumerate() {
        let report = serving.ingest(batch).expect("fresh table ids");
        println!(
            "serve : batch {i}: +{} tables, +{} rows ({} mapped) -> {} new / {} updated clusters, {} entities currently new",
            report.tables,
            report.rows,
            report.mapped_rows,
            report.new_clusters,
            report.updated_clusters,
            report.new_entities,
        );
    }

    // The cumulative output has the same shape as a batch pipeline run.
    let output = serving.output();
    println!("\ncumulative state after the stream:");
    for class_output in &output.classes {
        println!(
            "  {:<12} {:>4} clusters -> {:>3} new entities, {:>3} linked to existing instances",
            class_output.class.to_string(),
            class_output.clusters.len(),
            class_output.new_entities().len(),
            class_output.existing_entities().len(),
        );
    }

    // Contract check: the micro-batched ingest equals one streaming pass
    // over the union corpus, bit for bit.
    let union = Pipeline::new(world.kb(), loaded.models.clone(), config)
        .run_streaming(&corpus)
        .expect("non-empty corpus");
    let decisions = |o: &PipelineOutput| -> Vec<(ClassKey, Vec<bool>)> {
        o.classes
            .iter()
            .map(|c| (c.class, c.results.iter().map(|r| r.outcome.is_new()).collect()))
            .collect()
    };
    assert_eq!(decisions(&output), decisions(&union));
    println!("\nequivalence: micro-batched ingest == one streaming union pass ✓");

    std::fs::remove_file(&path).ok();
}
