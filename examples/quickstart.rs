//! Quickstart: generate a synthetic world + web table corpus, train the
//! pipeline models on the gold standard, run the two-iteration pipeline and
//! print what was added to the knowledge base.
//!
//! The body lives in [`ltee::examples::quickstart`] so the golden-snapshot
//! test (`tests/golden_examples.rs`) can capture and pin its exact output.
//!
//! Run with: `cargo run --release --example quickstart`

fn main() {
    ltee::examples::quickstart(&mut std::io::stdout().lock()).expect("writable stdout");
}
