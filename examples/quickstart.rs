//! Quickstart: generate a synthetic world + web table corpus, train the
//! pipeline models on the gold standard, run the two-iteration pipeline and
//! print what was added to the knowledge base.
//!
//! Run with: `cargo run --release --example quickstart`

use ltee_core::prelude::*;

fn main() {
    // 1. A synthetic cross-domain knowledge base (DBpedia stand-in) plus the
    //    world of entities it only partially covers.
    let world = generate_world(&GeneratorConfig::new(Scale::tiny(), 7));
    // 2. A web table corpus describing head *and* long-tail entities.
    let corpus = generate_corpus(&world, &CorpusConfig::tiny());
    println!(
        "corpus: {} tables, {} rows — knowledge base: {} instances",
        corpus.len(),
        corpus.total_rows(),
        world.kb().instances().len()
    );

    // 3. Gold standards (derived from the generator's ground truth) used to
    //    train the matcher weights, the row similarity model and the
    //    entity-to-instance model.
    let golds: Vec<GoldStandard> =
        CLASS_KEYS.iter().map(|&c| GoldStandard::build(&world, &corpus, c)).collect();
    let config = PipelineConfig::fast();
    let models = train_models(&corpus, world.kb(), &golds, &config).expect("trainable corpus");

    // 4. Run the pipeline: schema matching → row clustering → entity
    //    creation → new detection, twice (the second iteration refines the
    //    schema mapping with the first iteration's output).
    let pipeline = Pipeline::new(world.kb(), models, config);
    let output = pipeline.run(&corpus).expect("non-empty corpus");

    for class_output in &output.classes {
        let new = class_output.new_entities();
        let existing = class_output.existing_entities();
        println!(
            "\n{}: {} clusters -> {} new entities, {} linked to existing instances",
            class_output.class,
            class_output.clusters.len(),
            new.len(),
            existing.len()
        );
        for entity in new.iter().take(3) {
            println!("  new entity `{}` with {} facts:", entity.canonical_label(), entity.fact_count());
            for (prop, value, _) in entity.facts.iter().take(4) {
                println!("    {prop} = {value}");
            }
        }
    }
}
