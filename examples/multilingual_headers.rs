//! Messy multilingual headers: tables whose headers and labels mix French,
//! Spanish, Turkish, German and friends — including the dotted capital 'İ'
//! whose lowercase form is two chars, exercising multi-char case folding
//! end to end through ingest and the exact-lookup index.
//!
//! The body lives in [`ltee::examples::multilingual_headers`] so the
//! golden-snapshot test (`tests/golden_examples.rs`) can pin its output.
//!
//! Run with: `cargo run --release --example multilingual_headers`

fn main() {
    ltee::examples::multilingual_headers(&mut std::io::stdout().lock()).expect("writable stdout");
}
