//! Scientific-paper-style tables: unit-annotated abbreviated headers
//! ("ht. (cm)", "pop. (×10³)"), footnote markers on labels, sample-size and
//! reference columns — the schema matcher has to see through all of it.
//!
//! The body lives in [`ltee::examples::scientific_tables`] so the
//! golden-snapshot test (`tests/golden_examples.rs`) can pin its output.
//!
//! Run with: `cargo run --release --example scientific_tables`

fn main() {
    ltee::examples::scientific_tables(&mut std::io::stdout().lock()).expect("writable stdout");
}
