//! KB server walkthrough: the consumption surface of the reproduction.
//!
//! Trains the models once, then serves the growing knowledge base through
//! `ltee-serve`: micro-batches ingest on the writer thread while reader
//! threads concurrently query **pinned snapshot versions** — wait-free,
//! each reader seeing one consistent KB version per query, never a
//! partially ingested batch. Superseded versions are reclaimed behind a
//! bounded retention window (`RetentionPolicy`, default keep-last-8), so
//! the server's memory stays flat under indefinite ingest. Afterwards it tours the query API (exact and
//! fuzzy label lookup, entity fetch with fused facts + table provenance,
//! per-class paging, batched execution) against the final version.
//! The last act makes the KB durable: the same stream ingests through
//! [`DurableServePipeline`] (WAL + periodic checkpoints), the process
//! "crashes", and a reopened server recovers **bit-identically** —
//! fingerprint-equal snapshots, same answers.
//!
//! Run with: `cargo run --release --example kb_server`

use ltee_core::prelude::*;
use ltee_serve::{
    CheckpointPolicy, DurableServePipeline, LinkOutcome, Query, QueryOutput, ServePipeline,
};

fn main() {
    // ── Train phase (offline, once) ─────────────────────────────────────
    let world = generate_world(&GeneratorConfig::new(Scale::tiny(), 58));
    let corpus = generate_corpus(&world, &CorpusConfig::tiny());
    let golds: Vec<GoldStandard> =
        CLASS_KEYS.iter().map(|&c| GoldStandard::build(&world, &corpus, c)).collect();
    let config = PipelineConfig::fast();
    let models = train_models(&corpus, world.kb(), &golds, &config).expect("trainable corpus");

    // ── Serve phase: one writer, many wait-free readers ─────────────────
    let mut serving = ServePipeline::new(world.kb(), models.clone(), config.clone());
    println!(
        "serve : version {} published (empty KB), {} tables queued as micro-batches",
        serving.version(),
        corpus.len()
    );

    let batches = corpus.split_into_batches(4);
    let final_version = batches.len() as u64;
    std::thread::scope(|scope| {
        // Two readers hammer the evolving KB while batches ingest. Each
        // query pins one snapshot version; observations are collected and
        // printed after the join so the output stays readable.
        let handles: Vec<_> = (0..2)
            .map(|reader_id| {
                let reader = serving.reader();
                scope.spawn(move || {
                    let mut observations: Vec<(u64, usize, usize)> = Vec::new();
                    let mut last_version = 0;
                    // Deadline so a failed writer can't leave the readers
                    // (and therefore the scope join) spinning forever.
                    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
                    while last_version < final_version && std::time::Instant::now() < deadline {
                        let snap = reader.snapshot(); // wait-free
                        let stats = snap.stats();
                        let hits = snap.fuzzy_lookup(None, "the river song", 3);
                        observations.push((snap.version(), stats.rows, hits.len()));
                        last_version = snap.version();
                        std::thread::yield_now();
                    }
                    (reader_id, observations)
                })
            })
            .collect();

        for batch in &batches {
            let report = serving.ingest(batch).expect("fresh table ids");
            println!(
                "ingest: version {} published: +{} tables, +{} rows -> {} new / {} updated clusters",
                serving.version(),
                report.tables,
                report.rows,
                report.new_clusters,
                report.updated_clusters
            );
        }

        for handle in handles {
            let (reader_id, observations) = handle.join().expect("reader thread");
            let versions: Vec<u64> = observations.iter().map(|(v, _, _)| *v).collect();
            assert!(versions.windows(2).all(|w| w[0] <= w[1]), "versions are monotonic");
            println!(
                "reader {reader_id}: {} wait-free loads across versions {:?}..={:?}",
                observations.len(),
                versions.first().unwrap_or(&0),
                versions.last().unwrap_or(&0)
            );
        }
    });

    // ── Query tour against the final pinned version ─────────────────────
    let snap = serving.snapshot();
    let stats = snap.stats();
    println!("\nfinal snapshot: version {}, {} tables, {} rows", snap.version(), stats.tables, stats.rows);
    for class in &stats.classes {
        println!(
            "  {:<22} {:>4} entities ({} new, {} linked to the KB)",
            class.class.to_string(),
            class.entities,
            class.new_entities,
            class.linked_entities
        );
    }

    // Pick a served entity and show the full record: fused facts plus
    // row- and table-level provenance.
    let first_class = snap.classes().next().expect("non-empty snapshot");
    let record = &first_class.records()[0];
    println!("\nentity fetch: `{}` ({})", record.canonical_label(), first_class.class());
    match &record.outcome {
        LinkOutcome::New => println!("  verdict: NEW — extends the knowledge base"),
        LinkOutcome::Existing { label, .. } => println!("  verdict: matches existing `{label}`"),
    }
    for (prop, value, score) in record.facts.iter().take(4) {
        println!("  {prop} = {value}  (support {score:.2})");
    }
    println!("  provenance: {} rows from {} tables", record.rows.len(), record.tables.len());

    // Exact vs fuzzy lookup on the same label.
    let label = record.canonical_label().to_string();
    let exact = snap.exact_lookup(None, &label);
    let chars = label.chars().count();
    let typo: String =
        label.chars().take(chars.saturating_sub(1)).chain(std::iter::once('x')).collect();
    let fuzzy = snap.fuzzy_lookup(None, &typo, 3);
    println!("\nexact  `{label}`: {} hit(s)", exact.len());
    println!("fuzzy  `{typo}`: {} hit(s), best score {:.3}", fuzzy.len(), fuzzy.first().map(|h| h.score).unwrap_or(0.0));

    // Batched execution on the work-stealing pool: responses arrive in
    // request order, bit-identical to sequential execution.
    let queries = vec![
        Query::Exact { class: None, label: label.clone() },
        Query::Fuzzy { class: None, label: typo, k: 3 },
        Query::List { class: first_class.class(), offset: 0, limit: 5 },
        Query::Stats,
    ];
    let outputs = snap.execute_batch(&queries);
    let sequential: Vec<QueryOutput> = queries.iter().map(|q| snap.execute(q)).collect();
    assert_eq!(outputs, sequential, "batched == sequential, per the determinism contract");
    println!("\nbatch : {} queries fanned out on the pool, responses identical to sequential ✓", queries.len());

    // ── Durability: the KB survives a restart ───────────────────────────
    // Re-run the same stream through the durable layer: every batch is
    // fsynced to a write-ahead log before it applies, and every 3rd batch
    // cuts a full checkpoint of the accumulated state.
    let dir = std::env::temp_dir().join("ltee-kb-server-demo");
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear stale store dir");
    }
    let (mut durable, _) = DurableServePipeline::open(
        &dir,
        world.kb(),
        models.clone(),
        config.clone(),
        CheckpointPolicy::EveryBatches(3),
    )
    .expect("fresh store dir");
    for batch in &batches {
        durable.ingest(batch).expect("fresh table ids");
    }
    let fingerprint = durable.snapshot().fingerprint();
    println!(
        "\ndurable: version {} persisted to {} (snapshot fingerprint {fingerprint:016x})",
        durable.version(),
        dir.display()
    );

    // "Crash": drop the whole in-memory state. Only the store directory
    // survives — exactly what a killed process would leave behind.
    drop(durable);

    let (revived, report) = DurableServePipeline::open(
        &dir,
        world.kb(),
        models,
        config,
        CheckpointPolicy::EveryBatches(3),
    )
    .expect("recoverable store dir");
    println!(
        "revive : checkpoint@{} + {} WAL batch(es) replayed -> version {}",
        report.from_checkpoint.unwrap_or(0),
        report.replayed_batches,
        revived.version()
    );
    assert_eq!(
        revived.snapshot().fingerprint(),
        fingerprint,
        "recovery is bit-identical to the process that never crashed"
    );
    let hits = revived.snapshot().exact_lookup(None, &label);
    println!(
        "revive : exact `{label}` answers with {} hit(s) — bit-identical after restart ✓",
        hits.len()
    );
    std::fs::remove_dir_all(&dir).ok();
}
