//! Settlement scenario: the class where Wikipedia (and hence the knowledge
//! base) already covers almost everything, so very few genuinely new
//! settlements exist and table-to-class noise (mountains, regions) dominates
//! the errors. This example runs the large-scale profiling experiment
//! (paper Tables 11 & 12) at a small scale and prints the per-class
//! potential of the corpus.
//!
//! The body lives in [`ltee::examples::settlement_gazetteer`] so the
//! golden-snapshot test (`tests/golden_examples.rs`) can capture and pin
//! its exact output.
//!
//! Run with: `cargo run --release --example settlement_gazetteer`

fn main() {
    ltee::examples::settlement_gazetteer(&mut std::io::stdout().lock()).expect("writable stdout");
}
