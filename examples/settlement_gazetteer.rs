//! Settlement scenario: the class where Wikipedia (and hence the knowledge
//! base) already covers almost everything, so very few genuinely new
//! settlements exist and table-to-class noise (mountains, regions) dominates
//! the errors. This example runs the large-scale profiling experiment
//! (paper Tables 11 & 12) at a small scale and prints the per-class
//! potential of the corpus.
//!
//! Run with: `cargo run --release --example settlement_gazetteer`

use ltee_core::prelude::*;

fn main() {
    let config = ExperimentConfig::tiny();
    let result = experiments::table11_12_profiling(&config);

    println!("large-scale profiling (Table 11 shape):");
    println!(
        "{:<12} {:>8} {:>9} {:>9} {:>7} {:>8} {:>7} {:>7}",
        "class", "rows", "existing", "matched", "new", "n.facts", "e.acc", "f.acc"
    );
    for row in &result.table11 {
        println!(
            "{:<12} {:>8} {:>9} {:>9} {:>7} {:>8} {:>7.2} {:>7.2}",
            row.class,
            row.total_rows,
            row.existing_entities,
            row.matched_kb_instances,
            row.new_entities,
            row.new_facts,
            row.new_entity_accuracy,
            row.new_fact_accuracy
        );
    }

    println!("\nproperty densities of new settlements (Table 12 shape):");
    for row in result.table12.iter().filter(|r| r.class == "Settlement") {
        println!("  {:<18} {:>5} facts  ({:.0} %)", row.property, row.facts, row.density * 100.0);
    }

    // The paper's headline observation: settlements barely grow, songs grow a
    // lot. Print the relative increases so the contrast is visible.
    println!("\nrelative knowledge base growth by class:");
    for row in &result.table11 {
        println!(
            "  {:<12} +{:.1} % instances, +{:.1} % facts",
            row.class,
            row.instance_increase * 100.0,
            row.fact_increase * 100.0
        );
    }
}
